// Sparse delivery-plane tests. The pinning contract: with degree >= n the
// sparse plane's dense exact walk must reproduce the flat plane's integers
// BIT-IDENTICALLY — decisions, rounds, message accounting — for every
// compatible (protocol, adversary) registry pair, at any thread count and
// any intra-shard count. Below n, counts become estimates: randomized
// degree/seed fuzz checks agreement+validity still hold where the theory
// says they must (unanimous inputs, no adversary) and that knife-edge runs
// complete without tripping the relaxed assertions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "net/round_buffer.hpp"
#include "net/sparse_plane.hpp"
#include "rand/rng.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

using net::Message;
using net::MsgKind;

void expect_samples_eq(const Samples& a, const Samples& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto& xs = a.values();
    const auto& ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << " sample " << i;
}

void expect_aggregate_eq(const sim::Aggregate& a, const sim::Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    expect_samples_eq(a.rounds, b.rounds, "rounds");
    expect_samples_eq(a.messages, b.messages, "messages");
    expect_samples_eq(a.bits, b.bits, "bits");
    expect_samples_eq(a.corruptions, b.corruptions, "corruptions");
}

/// Largest t the protocol's resilience predicate admits at n (0 if none).
Count max_t(const sim::ProtocolEntry& p, NodeId n) {
    Count t = (n - 1) / 3;
    while (t > 0 && !p.supports(n, t)) --t;
    return t;
}

// ---------------------------------------------------------------------------
// Dense-degree oracle equivalence over the registry cross product.

TEST(SparsePlaneEquivalence, DenseSparseMatchesFlatAcrossRegistry) {
    const NodeId n = 25;
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = n;
            s.t = max_t(*p, n);
            s.inputs = sim::InputPattern::Split;
            s.local_coin_phases = 12;  // keep the private-coin runs bounded

            sim::Scenario sp = s;
            sp.sparse_plane = true;
            sp.sample_degree = n;  // dense: the exact-walk oracle mode
            if (!sim::compatible(s) || !sim::compatible(sp)) continue;
            ++covered;
            SCOPED_TRACE(p->name + " vs " + a->name);

            const sim::ExecutorConfig serial{1, 0};
            const sim::Aggregate flat = sim::run_trials(s, 0xD1CE, 6, serial);

            // Serial, threaded (8 workers), and intra-sharded (2 and 8
            // shards) sparse runs must all reproduce the flat integers.
            expect_aggregate_eq(flat, sim::run_trials(sp, 0xD1CE, 6, serial));
            expect_aggregate_eq(flat, sim::run_trials(sp, 0xD1CE, 6, {8, 2}));
            for (const Count shards : {Count{2}, Count{8}}) {
                sim::Scenario sharded = sp;
                sharded.intra_threads = shards;
                expect_aggregate_eq(flat, sim::run_trials(sharded, 0xD1CE, 6, serial));
            }
        }
    }
    // 8 sparse-capable protocols x 9 adversaries minus the schedule and
    // targeting constraints (sampling-majority has no sparse batch).
    EXPECT_GE(covered, 45u) << "registry coverage unexpectedly low";
}

TEST(SparsePlaneEquivalence, DefaultDegreeIsDenseAtSmallN) {
    // n <= kDefaultSampleDegree: an unpinned sample_degree must still land
    // in the dense oracle mode, so small-n sparse scenarios stay exact.
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.n = 25;
    s.t = 8;
    const sim::Aggregate flat = sim::run_trials(s, 0xF00D, 4, {1, 0});
    s.sparse_plane = true;  // sample_degree stays 0 -> kDefaultSampleDegree
    expect_aggregate_eq(flat, sim::run_trials(s, 0xF00D, 4, {1, 0}));
}

// ---------------------------------------------------------------------------
// Sub-dense fuzz: estimates must preserve what the theory still guarantees.

TEST(SparsePlaneFuzz, SubDenseUnanimousKeepsAgreementAndValidity) {
    // Unanimous inputs, no adversary: every sampled edge reports the same
    // value, so estimates are exact at ANY degree and agreement + validity
    // must hold deterministically. Randomizes n, degree, protocol, seed.
    const sim::ProtocolKind protos[] = {
        sim::ProtocolKind::Ours, sim::ProtocolKind::ChorCoanRushing,
        sim::ProtocolKind::BenOr, sim::ProtocolKind::PhaseKing};
    Xoshiro256 rng(0x5EED);
    for (int iter = 0; iter < 16; ++iter) {
        sim::Scenario s;
        s.protocol = protos[iter % 4];
        s.adversary = sim::AdversaryKind::None;
        s.n = 70 + static_cast<NodeId>(rng.below(120));
        s.t = max_t(sim::ProtocolRegistry::instance().at(s.protocol), s.n);
        s.inputs = rng.bernoulli(0.5) ? sim::InputPattern::AllOne
                                      : sim::InputPattern::AllZero;
        s.local_coin_phases = 12;
        s.sparse_plane = true;
        s.sample_degree = 4 + static_cast<Count>(rng.below(48));  // sub-dense
        SCOPED_TRACE(s.describe());
        const sim::Aggregate agg = sim::run_trials(s, rng(), 3, {1, 0});
        EXPECT_EQ(agg.agreement_failures, 0u);
        EXPECT_EQ(agg.validity_failures, 0u);
        EXPECT_EQ(agg.not_halted, 0u);
    }
}

TEST(SparsePlaneFuzz, SubDenseSplitRunsCompleteWithoutTrippingAsserts) {
    // Split inputs push quorum counts near thresholds, where sampled
    // estimates genuinely wobble: decisions are not guaranteed, but every
    // trial must complete — the relaxed (assert-free) threshold forms must
    // absorb estimate noise instead of aborting, and the round cap bounds
    // stalls. This is the regression guard for the `checked` gating in
    // SkeletonBatch::apply_round2 / BenOrBatch::apply_propose.
    Xoshiro256 rng(0xFADE);
    for (int iter = 0; iter < 10; ++iter) {
        sim::Scenario s;
        s.protocol = iter % 2 ? sim::ProtocolKind::Ours : sim::ProtocolKind::BenOr;
        s.adversary = sim::AdversaryKind::Static;
        s.n = 80 + static_cast<NodeId>(rng.below(80));
        s.t = max_t(sim::ProtocolRegistry::instance().at(s.protocol), s.n);
        s.q = static_cast<Count>(rng.below(s.t + 1));
        s.inputs = sim::InputPattern::Split;
        s.local_coin_phases = 8;
        s.max_rounds_override = 60;  // bound the stalled-run worst case
        s.sparse_plane = true;
        s.sample_degree = 6 + static_cast<Count>(rng.below(32));
        SCOPED_TRACE(s.describe());
        const sim::Aggregate agg = sim::run_trials(s, rng(), 3, {1, 0});
        EXPECT_EQ(agg.trials, 3u);  // completion, not decisions
    }
}

// ---------------------------------------------------------------------------
// Scenario key round-trip, did-you-mean, and feasibility messages.

TEST(SparsePlaneScenario, PlaneKeysRoundTrip) {
    sim::Scenario s;
    s.n = 16;
    s.t = 5;
    s.sparse_plane = true;
    s.sample_degree = 48;
    EXPECT_EQ(sim::Scenario::parse(s.describe()), s);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5").sparse_plane);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5 plane=flat").sparse_plane);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5 plane=sparse").sparse_plane);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5 sample_degree=7").sample_degree, 7u);

    sim::MvScenario m;
    m.n = 32;
    m.t = 5;
    m.sparse_plane = true;
    m.sample_degree = 16;
    EXPECT_EQ(sim::MvScenario::parse(m.describe()), m);
    EXPECT_FALSE(sim::MvScenario::parse("n=32 t=5 plane=flat").sparse_plane);
}

TEST(SparsePlaneScenario, PlaneTypoGetsDidYouMean) {
    try {
        sim::Scenario::parse("n=16 t=5 plane=sparce");
        FAIL() << "typo'd plane value must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'sparse'"),
                  std::string::npos)
            << e.what();
    }
    try {
        sim::MvScenario::parse("n=32 t=5 plane=flatt");
        FAIL() << "typo'd plane value must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'flat'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SparsePlaneScenario, FeasibilityMessagesAreActionable) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::None;
    s.n = 25;
    s.t = 8;
    s.sparse_plane = true;
    ASSERT_FALSE(sim::why_incompatible(s).has_value());

    sim::Scenario no_simd = s;
    no_simd.use_simd = false;
    auto why = sim::why_incompatible(no_simd);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("simd"), std::string::npos) << *why;

    sim::Scenario no_batch = s;
    no_batch.use_batch = false;
    why = sim::why_incompatible(no_batch);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("batch"), std::string::npos) << *why;

    sim::Scenario ref = s;
    ref.reference_delivery = true;
    why = sim::why_incompatible(ref);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("reference"), std::string::npos) << *why;

    sim::Scenario unsupported = s;
    unsupported.protocol = sim::ProtocolKind::SamplingMajority;
    unsupported.adversary = sim::AdversaryKind::Balancer;
    why = sim::why_incompatible(unsupported);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("sparse-capable"), std::string::npos) << *why;

    sim::MvScenario m;
    m.n = 32;
    m.t = 5;
    m.sparse_plane = true;
    why = sim::why_incompatible(m);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("plane=flat"), std::string::npos) << *why;
}

// ---------------------------------------------------------------------------
// SparsePlane unit behaviour against a randomized buffer.

TEST(SparsePlaneUnit, DenseWalkMatchesReceiveViewOnRandomBuffers) {
    Xoshiro256 rng(909);
    for (int iter = 0; iter < 40; ++iter) {
        const NodeId n = 6 + static_cast<NodeId>(rng.below(40));
        net::RoundBuffer buf;
        buf.reset(n);
        buf.begin_round();
        for (NodeId v = 0; v < n; ++v) {
            if (rng.bernoulli(0.2)) {  // Byzantine sender with a pattern row
                buf.corrupt(v);
                Message m;
                m.kind = rng.bernoulli(0.5) ? MsgKind::Vote1 : MsgKind::Vote2;
                m.phase = static_cast<Phase>(rng.below(2));
                m.val = static_cast<Bit>(rng.below(2));
                m.flag = static_cast<std::uint8_t>(rng.below(2));
                Message m2 = m;
                m2.val = static_cast<Bit>(rng.below(2));
                buf.apply_pattern(v, &m, rng.bernoulli(0.5) ? &m2 : nullptr,
                                  static_cast<NodeId>(rng.below(n + 1)));
            } else if (rng.bernoulli(0.8)) {  // honest broadcast
                Message m;
                m.kind = rng.bernoulli(0.5) ? MsgKind::Vote1 : MsgKind::Vote2;
                m.phase = static_cast<Phase>(rng.below(2));
                m.val = static_cast<Bit>(rng.below(2));
                m.flag = static_cast<std::uint8_t>(rng.below(2));
                buf.set_broadcast(v, m);
            }
        }
        net::RoundTally tally;
        tally.rebuild(buf, /*packed=*/true, nullptr);

        net::SparsePlane plane;
        plane.reset(n, /*requested_degree=*/n, /*seed=*/rng());
        ASSERT_TRUE(plane.dense());
        plane.begin_round(0, buf, tally);

        for (const MsgKind kind : {MsgKind::Vote1, MsgKind::Vote2}) {
            for (const Phase ph : {Phase{0}, Phase{1}}) {
                for (const bool rf : {false, true}) {
                    const auto q = plane.query(kind, ph, rf);
                    for (NodeId recv = 0; recv < n; ++recv) {
                        const net::ReceiveView view(buf, tally, recv);
                        ASSERT_EQ(plane.val_estimates(q, recv),
                                  view.val_counts(kind, ph, rf))
                            << "kind=" << int(kind) << " phase=" << ph
                            << " rf=" << rf << " recv=" << recv;
                    }
                }
            }
        }
    }
}

TEST(SparsePlaneUnit, SubDenseSamplingIsSeedDerivedAndBounded) {
    const NodeId n = 500;
    net::RoundBuffer buf;
    buf.reset(n);
    buf.begin_round();
    Message m;
    m.kind = MsgKind::Vote1;
    m.phase = 0;
    for (NodeId v = 0; v < n; ++v) {
        m.val = static_cast<Bit>(v & 1);
        buf.set_broadcast(v, m);
    }
    net::RoundTally tally;
    tally.rebuild(buf, /*packed=*/true, nullptr);

    net::SparsePlane a, b;
    a.reset(n, 32, 0xABCD);
    b.reset(n, 32, 0xABCD);
    EXPECT_FALSE(a.dense());
    EXPECT_EQ(a.degree(), 32u);
    a.begin_round(3, buf, tally);
    b.begin_round(3, buf, tally);
    const auto qa = a.query(MsgKind::Vote1, 0, false);
    const auto qb = b.query(MsgKind::Vote1, 0, false);
    for (NodeId recv = 0; recv < n; recv += 17) {
        // Replayability: same (seed, round, receiver) -> same draws, on any
        // plane instance (the bit-exactness discipline sampling relies on).
        const auto ra = a.raw_counts(qa, recv);
        ASSERT_EQ(ra, b.raw_counts(qb, recv));
        EXPECT_LE(ra[0] + ra[1], 32u);  // at most `degree` sampled edges
        const auto ea = a.val_estimates(qa, recv);
        EXPECT_LE(ea[0], n + 1);  // scaled estimates stay population-sized
        EXPECT_LE(ea[1], n + 1);
    }
    // A different seed or round must decorrelate the sample sets: with 32
    // draws from a half-and-half population, identical counts at every
    // probed receiver would mean the streams are not independent.
    net::SparsePlane c;
    c.reset(n, 32, 0xABCE);
    c.begin_round(3, buf, tally);
    const auto qc = c.query(MsgKind::Vote1, 0, false);
    bool any_diff = false;
    for (NodeId recv = 0; recv < n; recv += 17)
        any_diff |= c.raw_counts(qc, recv) != a.raw_counts(qa, recv);
    EXPECT_TRUE(any_diff);
}

TEST(SparsePlaneUnit, OwnsNoMaterializedSampleTables) {
    // The memory model: samples are re-derived from (seed, round, receiver,
    // i), so the plane owns no per-edge storage at any n — the strongest
    // form of the O(n * degree) working-set bound.
    net::SparsePlane p;
    p.reset(NodeId{1} << 20, 64, 42);
    EXPECT_LE(p.memory_bytes(),
              static_cast<std::size_t>(p.n()) * p.degree() * sizeof(NodeId));
    EXPECT_EQ(p.memory_bytes(), 0u);
}

}  // namespace
}  // namespace adba
