// Sparse delivery-plane tests. The pinning contract: with degree >= n the
// sparse plane's dense exact walk must reproduce the flat plane's integers
// BIT-IDENTICALLY — decisions, rounds, message accounting — for every
// compatible (protocol, adversary) registry pair, at any thread count and
// any intra-shard count. Below n, counts become estimates: randomized
// degree/seed fuzz checks agreement+validity still hold where the theory
// says they must (unanimous inputs, no adversary) and that knife-edge runs
// complete without tripping the relaxed assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/round_buffer.hpp"
#include "net/sparse_kernels.hpp"
#include "net/sparse_plane.hpp"
#include "rand/rng.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

using net::Message;
using net::MsgKind;

void expect_samples_eq(const Samples& a, const Samples& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto& xs = a.values();
    const auto& ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << " sample " << i;
}

void expect_aggregate_eq(const sim::Aggregate& a, const sim::Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    expect_samples_eq(a.rounds, b.rounds, "rounds");
    expect_samples_eq(a.messages, b.messages, "messages");
    expect_samples_eq(a.bits, b.bits, "bits");
    expect_samples_eq(a.corruptions, b.corruptions, "corruptions");
}

/// Largest t the protocol's resilience predicate admits at n (0 if none).
Count max_t(const sim::ProtocolEntry& p, NodeId n) {
    Count t = (n - 1) / 3;
    while (t > 0 && !p.supports(n, t)) --t;
    return t;
}

// ---------------------------------------------------------------------------
// Dense-degree oracle equivalence over the registry cross product.

TEST(SparsePlaneEquivalence, DenseSparseMatchesFlatAcrossRegistry) {
    const NodeId n = 25;
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = n;
            s.t = max_t(*p, n);
            s.inputs = sim::InputPattern::Split;
            s.local_coin_phases = 12;  // keep the private-coin runs bounded

            sim::Scenario sp = s;
            sp.sparse_plane = true;
            sp.sample_degree = n;  // dense: the exact-walk oracle mode
            if (!sim::compatible(s) || !sim::compatible(sp)) continue;
            ++covered;
            SCOPED_TRACE(p->name + " vs " + a->name);

            const sim::ExecutorConfig serial{1, 0};
            const sim::Aggregate flat = sim::run_trials(s, 0xD1CE, 6, serial);

            // Serial, threaded (8 workers), and intra-sharded (2 and 8
            // shards) sparse runs must all reproduce the flat integers.
            expect_aggregate_eq(flat, sim::run_trials(sp, 0xD1CE, 6, serial));
            expect_aggregate_eq(flat, sim::run_trials(sp, 0xD1CE, 6, {8, 2}));
            for (const Count shards : {Count{2}, Count{8}}) {
                sim::Scenario sharded = sp;
                sharded.intra_threads = shards;
                expect_aggregate_eq(flat, sim::run_trials(sharded, 0xD1CE, 6, serial));
            }

            // Dense mode probes every sender exactly once regardless of how
            // the probe indices are derived, so BOTH frozen stream versions
            // must reproduce the flat integers (serial is enough here —
            // thread/shard invariance is covered by the default stream
            // above).
            sim::Scenario chain = sp;
            chain.sparse_stream = net::SparseStream::Chain;
            expect_aggregate_eq(flat, sim::run_trials(chain, 0xD1CE, 6, serial));
        }
    }
    // 8 sparse-capable protocols x 9 adversaries minus the schedule and
    // targeting constraints (sampling-majority has no sparse batch).
    EXPECT_GE(covered, 45u) << "registry coverage unexpectedly low";
}

TEST(SparsePlaneEquivalence, DefaultDegreeIsDenseAtSmallN) {
    // n <= kDefaultSampleDegree: an unpinned sample_degree must still land
    // in the dense oracle mode, so small-n sparse scenarios stay exact.
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.n = 25;
    s.t = 8;
    const sim::Aggregate flat = sim::run_trials(s, 0xF00D, 4, {1, 0});
    s.sparse_plane = true;  // sample_degree stays 0 -> kDefaultSampleDegree
    expect_aggregate_eq(flat, sim::run_trials(s, 0xF00D, 4, {1, 0}));
}

// ---------------------------------------------------------------------------
// Sub-dense fuzz: estimates must preserve what the theory still guarantees.

TEST(SparsePlaneFuzz, SubDenseUnanimousKeepsAgreementAndValidity) {
    // Unanimous inputs, no adversary: every sampled edge reports the same
    // value, so estimates are exact at ANY degree and agreement + validity
    // must hold deterministically. Randomizes n, degree, protocol, seed.
    const sim::ProtocolKind protos[] = {
        sim::ProtocolKind::Ours, sim::ProtocolKind::ChorCoanRushing,
        sim::ProtocolKind::BenOr, sim::ProtocolKind::PhaseKing};
    Xoshiro256 rng(0x5EED);
    for (int iter = 0; iter < 16; ++iter) {
        sim::Scenario s;
        s.protocol = protos[iter % 4];
        s.adversary = sim::AdversaryKind::None;
        s.n = 70 + static_cast<NodeId>(rng.below(120));
        s.t = max_t(sim::ProtocolRegistry::instance().at(s.protocol), s.n);
        s.inputs = rng.bernoulli(0.5) ? sim::InputPattern::AllOne
                                      : sim::InputPattern::AllZero;
        s.local_coin_phases = 12;
        s.sparse_plane = true;
        s.sample_degree = 4 + static_cast<Count>(rng.below(48));  // sub-dense
        SCOPED_TRACE(s.describe());
        const sim::Aggregate agg = sim::run_trials(s, rng(), 3, {1, 0});
        EXPECT_EQ(agg.agreement_failures, 0u);
        EXPECT_EQ(agg.validity_failures, 0u);
        EXPECT_EQ(agg.not_halted, 0u);
    }
}

TEST(SparsePlaneFuzz, SubDenseSplitRunsCompleteWithoutTrippingAsserts) {
    // Split inputs push quorum counts near thresholds, where sampled
    // estimates genuinely wobble: decisions are not guaranteed, but every
    // trial must complete — the relaxed (assert-free) threshold forms must
    // absorb estimate noise instead of aborting, and the round cap bounds
    // stalls. This is the regression guard for the `checked` gating in
    // SkeletonBatch::apply_round2 / BenOrBatch::apply_propose.
    Xoshiro256 rng(0xFADE);
    for (int iter = 0; iter < 10; ++iter) {
        sim::Scenario s;
        s.protocol = iter % 2 ? sim::ProtocolKind::Ours : sim::ProtocolKind::BenOr;
        s.adversary = sim::AdversaryKind::Static;
        s.n = 80 + static_cast<NodeId>(rng.below(80));
        s.t = max_t(sim::ProtocolRegistry::instance().at(s.protocol), s.n);
        s.q = static_cast<Count>(rng.below(s.t + 1));
        s.inputs = sim::InputPattern::Split;
        s.local_coin_phases = 8;
        s.max_rounds_override = 60;  // bound the stalled-run worst case
        s.sparse_plane = true;
        s.sample_degree = 6 + static_cast<Count>(rng.below(32));
        SCOPED_TRACE(s.describe());
        const sim::Aggregate agg = sim::run_trials(s, rng(), 3, {1, 0});
        EXPECT_EQ(agg.trials, 3u);  // completion, not decisions
    }
}

// ---------------------------------------------------------------------------
// Scenario key round-trip, did-you-mean, and feasibility messages.

TEST(SparsePlaneScenario, PlaneKeysRoundTrip) {
    sim::Scenario s;
    s.n = 16;
    s.t = 5;
    s.sparse_plane = true;
    s.sample_degree = 48;
    EXPECT_EQ(sim::Scenario::parse(s.describe()), s);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5").sparse_plane);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5 plane=flat").sparse_plane);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5 plane=sparse").sparse_plane);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5 sample_degree=7").sample_degree, 7u);

    // Topology-seed and stream-version keys survive the round trip, both at
    // their defaults (elided from describe()) and when set.
    s.sparse_seed = 1234567;
    s.sparse_stream = net::SparseStream::Chain;
    EXPECT_EQ(sim::Scenario::parse(s.describe()), s);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5 sparse_seed=9").sparse_seed, 9u);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5").sparse_stream,
              net::SparseStream::Counter);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5 sparse_stream=chain").sparse_stream,
              net::SparseStream::Chain);
    EXPECT_EQ(sim::Scenario::parse("n=16 t=5 sparse_stream=counter").sparse_stream,
              net::SparseStream::Counter);

    sim::MvScenario m;
    m.n = 32;
    m.t = 5;
    m.sparse_plane = true;
    m.sample_degree = 16;
    EXPECT_EQ(sim::MvScenario::parse(m.describe()), m);
    EXPECT_FALSE(sim::MvScenario::parse("n=32 t=5 plane=flat").sparse_plane);
}

TEST(SparsePlaneScenario, PlaneTypoGetsDidYouMean) {
    try {
        sim::Scenario::parse("n=16 t=5 plane=sparce");
        FAIL() << "typo'd plane value must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'sparse'"),
                  std::string::npos)
            << e.what();
    }
    try {
        sim::MvScenario::parse("n=32 t=5 plane=flatt");
        FAIL() << "typo'd plane value must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'flat'"),
                  std::string::npos)
            << e.what();
    }
    try {
        sim::Scenario::parse("n=16 t=5 sparse_stream=countre");
        FAIL() << "typo'd sparse_stream value must throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("did you mean 'counter'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SparsePlaneScenario, FeasibilityMessagesAreActionable) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::None;
    s.n = 25;
    s.t = 8;
    s.sparse_plane = true;
    ASSERT_FALSE(sim::why_incompatible(s).has_value());

    sim::Scenario no_simd = s;
    no_simd.use_simd = false;
    auto why = sim::why_incompatible(no_simd);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("simd"), std::string::npos) << *why;

    sim::Scenario no_batch = s;
    no_batch.use_batch = false;
    why = sim::why_incompatible(no_batch);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("batch"), std::string::npos) << *why;

    sim::Scenario ref = s;
    ref.reference_delivery = true;
    why = sim::why_incompatible(ref);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("reference"), std::string::npos) << *why;

    sim::Scenario unsupported = s;
    unsupported.protocol = sim::ProtocolKind::SamplingMajority;
    unsupported.adversary = sim::AdversaryKind::Balancer;
    why = sim::why_incompatible(unsupported);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("sparse-capable"), std::string::npos) << *why;

    sim::MvScenario m;
    m.n = 32;
    m.t = 5;
    m.sparse_plane = true;
    why = sim::why_incompatible(m);
    ASSERT_TRUE(why.has_value());
    EXPECT_NE(why->find("plane=flat"), std::string::npos) << *why;
}

// ---------------------------------------------------------------------------
// SparsePlane unit behaviour against a randomized buffer.

TEST(SparsePlaneUnit, DenseWalkMatchesReceiveViewOnRandomBuffers) {
    Xoshiro256 rng(909);
    for (int iter = 0; iter < 40; ++iter) {
        const NodeId n = 6 + static_cast<NodeId>(rng.below(40));
        net::RoundBuffer buf;
        buf.reset(n);
        buf.begin_round();
        for (NodeId v = 0; v < n; ++v) {
            if (rng.bernoulli(0.2)) {  // Byzantine sender with a pattern row
                buf.corrupt(v);
                Message m;
                m.kind = rng.bernoulli(0.5) ? MsgKind::Vote1 : MsgKind::Vote2;
                m.phase = static_cast<Phase>(rng.below(2));
                m.val = static_cast<Bit>(rng.below(2));
                m.flag = static_cast<std::uint8_t>(rng.below(2));
                Message m2 = m;
                m2.val = static_cast<Bit>(rng.below(2));
                buf.apply_pattern(v, &m, rng.bernoulli(0.5) ? &m2 : nullptr,
                                  static_cast<NodeId>(rng.below(n + 1)));
            } else if (rng.bernoulli(0.8)) {  // honest broadcast
                Message m;
                m.kind = rng.bernoulli(0.5) ? MsgKind::Vote1 : MsgKind::Vote2;
                m.phase = static_cast<Phase>(rng.below(2));
                m.val = static_cast<Bit>(rng.below(2));
                m.flag = static_cast<std::uint8_t>(rng.below(2));
                buf.set_broadcast(v, m);
            }
        }
        net::RoundTally tally;
        tally.rebuild(buf, /*packed=*/true, nullptr);

        net::SparsePlane plane;
        plane.reset(n, /*requested_degree=*/n, /*seed=*/rng());
        ASSERT_TRUE(plane.dense());
        plane.begin_round(0, buf, tally);

        for (const MsgKind kind : {MsgKind::Vote1, MsgKind::Vote2}) {
            for (const Phase ph : {Phase{0}, Phase{1}}) {
                for (const bool rf : {false, true}) {
                    const auto q = plane.query(kind, ph, rf);
                    for (NodeId recv = 0; recv < n; ++recv) {
                        const net::ReceiveView view(buf, tally, recv);
                        ASSERT_EQ(plane.val_estimates(q, recv),
                                  view.val_counts(kind, ph, rf))
                            << "kind=" << int(kind) << " phase=" << ph
                            << " rf=" << rf << " recv=" << recv;
                    }
                }
            }
        }
    }
}

TEST(SparsePlaneUnit, SubDenseSamplingIsSeedDerivedAndBounded) {
    const NodeId n = 500;
    net::RoundBuffer buf;
    buf.reset(n);
    buf.begin_round();
    Message m;
    m.kind = MsgKind::Vote1;
    m.phase = 0;
    for (NodeId v = 0; v < n; ++v) {
        m.val = static_cast<Bit>(v & 1);
        buf.set_broadcast(v, m);
    }
    net::RoundTally tally;
    tally.rebuild(buf, /*packed=*/true, nullptr);

    net::SparsePlane a, b;
    a.reset(n, 32, 0xABCD);
    b.reset(n, 32, 0xABCD);
    EXPECT_FALSE(a.dense());
    EXPECT_EQ(a.degree(), 32u);
    a.begin_round(3, buf, tally);
    b.begin_round(3, buf, tally);
    const auto qa = a.query(MsgKind::Vote1, 0, false);
    const auto qb = b.query(MsgKind::Vote1, 0, false);
    for (NodeId recv = 0; recv < n; recv += 17) {
        // Replayability: same (seed, round, receiver) -> same draws, on any
        // plane instance (the bit-exactness discipline sampling relies on).
        const auto ra = a.raw_counts(qa, recv);
        ASSERT_EQ(ra, b.raw_counts(qb, recv));
        EXPECT_LE(ra[0] + ra[1], 32u);  // at most `degree` sampled edges
        const auto ea = a.val_estimates(qa, recv);
        EXPECT_LE(ea[0], n + 1);  // scaled estimates stay population-sized
        EXPECT_LE(ea[1], n + 1);
    }
    // A different seed or round must decorrelate the sample sets: with 32
    // draws from a half-and-half population, identical counts at every
    // probed receiver would mean the streams are not independent.
    net::SparsePlane c;
    c.reset(n, 32, 0xABCE);
    c.begin_round(3, buf, tally);
    const auto qc = c.query(MsgKind::Vote1, 0, false);
    bool any_diff = false;
    for (NodeId recv = 0; recv < n; recv += 17)
        any_diff |= c.raw_counts(qc, recv) != a.raw_counts(qa, recv);
    EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Batched probe kernels: frozen stream derivations and counting parity.

TEST(SparseKernels, ChainStreamReproducesRecordedIntegers) {
    // The v1 chain derivation is FROZEN — these integers were recorded from
    // the PR 7 scalar loop (h = mix(seed ^ ((round << 32) | receiver)); per
    // draw h = mix(h), index = h % n) and must never change: recorded
    // chain-stream experiments replay only if the kernel reproduces them
    // bit-for-bit. If this test fails, the derivation was edited — add a
    // new SparseStream enumerator instead.
    const std::uint64_t seed = 0x1234;
    const Round round = 5;
    const NodeId receiver = 77;
    const NodeId n = 1000;
    const NodeId expected[8] = {206, 235, 285, 532, 136, 650, 4, 457};

    std::uint64_t h = net::kern::sparse_mixed_base(
        net::kern::sparse_stream_base(seed, round, receiver));
    NodeId out[8] = {};
    h = net::kern::sparse_fill_indices(net::SparseStream::Chain, h, n, 0, 8, out);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], expected[i]) << "draw " << i;
    EXPECT_EQ(h, 0x181688ca60949ce9ull);  // chain state after 8 draws

    // Block splits cannot change the chain: deriving 3 + 5 draws threads the
    // state through the return value and lands on the same indices.
    NodeId split[8] = {};
    std::uint64_t g = net::kern::sparse_mixed_base(
        net::kern::sparse_stream_base(seed, round, receiver));
    g = net::kern::sparse_fill_indices(net::SparseStream::Chain, g, n, 0, 3, split);
    g = net::kern::sparse_fill_indices(net::SparseStream::Chain, g, n, 3, 5,
                                       split + 3);
    EXPECT_EQ(g, h);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(split[i], expected[i]);
}

TEST(SparseKernels, ChainCountsMatchScalarReferenceOnRandomBuffers) {
    // Functional pin of the whole batched path against an independent
    // reimplementation of the PR 7 per-probe loop: serial chain derivation,
    // state-BYTE honesty test (not the packed word plane), and the exact
    // from() walk for every probe. Agreement across random buffers checks
    // the packed honesty plane, the gathered bit reads, and the Byzantine
    // rerouting in one sweep.
    Xoshiro256 rng(4242);
    for (int iter = 0; iter < 25; ++iter) {
        const NodeId n = 40 + static_cast<NodeId>(rng.below(400));
        const Count degree = 8 + static_cast<Count>(rng.below(n / 2));
        net::RoundBuffer buf;
        buf.reset(n);
        buf.begin_round();
        for (NodeId v = 0; v < n; ++v) {
            Message m;
            m.kind = rng.bernoulli(0.5) ? MsgKind::Vote1 : MsgKind::Vote2;
            m.phase = static_cast<Phase>(rng.below(2));
            m.val = static_cast<Bit>(rng.below(2));
            m.flag = static_cast<std::uint8_t>(rng.below(2));
            if (rng.bernoulli(0.15)) {
                buf.corrupt(v);
                Message m2 = m;
                m2.val = static_cast<Bit>(rng.below(2));
                buf.apply_pattern(v, &m, rng.bernoulli(0.5) ? &m2 : nullptr,
                                  static_cast<NodeId>(rng.below(n + 1)));
            } else if (rng.bernoulli(0.85)) {
                buf.set_broadcast(v, m);
            }
        }
        net::RoundTally tally;
        tally.rebuild(buf, /*packed=*/true, nullptr);

        const std::uint64_t seed = rng();
        const Round round = static_cast<Round>(rng.below(50));
        net::SparsePlane plane;
        plane.reset(n, degree, seed, net::SparseStream::Chain);
        ASSERT_FALSE(plane.dense());
        plane.begin_round(round, buf, tally);

        for (const bool rf : {false, true}) {
            const auto q = plane.query(MsgKind::Vote1, 1, rf);
            for (NodeId recv = 0; recv < n; recv += 13) {
                std::array<Count, 2> ref{};
                std::uint64_t h = net::kern::sparse_mix(
                    seed ^ ((static_cast<std::uint64_t>(round) << 32) | recv));
                for (Count i = 0; i < degree; ++i) {
                    h = net::kern::sparse_mix(h);
                    const NodeId sender = static_cast<NodeId>(h % n);
                    if (const Message* m = buf.from(recv, sender)) {
                        if (m->kind == MsgKind::Vote1 && m->phase == 1 &&
                            (!rf || m->flag != 0))
                            ++ref[m->val & 1];
                    }
                }
                ASSERT_EQ(plane.raw_counts(q, recv), ref)
                    << "n=" << n << " degree=" << degree << " recv=" << recv
                    << " rf=" << rf;
            }
        }
    }
}

TEST(SparseKernels, CounterLemireReductionIsUniformAtNonPowerOfTwoN) {
    // Chi-square uniformity of the counter stream's Lemire reduction at a
    // non-power-of-two n — the case where a naive bit-mask reduction would
    // be badly biased and `% n` is what it must match in quality. 64k draws
    // into 1000 cells: the statistic is a deterministic function of the
    // frozen derivation, and for a healthy generator it concentrates around
    // the 999 degrees of freedom (std ~45); 1250 is a ~5.6-sigma ceiling.
    const NodeId n = 1000;
    const NodeId draws_per_receiver = 64;
    const NodeId receivers = 1024;
    std::vector<std::uint32_t> hist(n, 0);
    NodeId idx[net::kern::kSparseBlock];
    for (NodeId recv = 0; recv < receivers; ++recv) {
        const std::uint64_t h = net::kern::sparse_mixed_base(
            net::kern::sparse_stream_base(0xC0FFEE, 9, recv));
        net::kern::sparse_fill_indices(net::SparseStream::Counter, h, n, 0,
                                       draws_per_receiver, idx);
        for (NodeId j = 0; j < draws_per_receiver; ++j) ++hist[idx[j]];
    }
    const double total = static_cast<double>(draws_per_receiver) * receivers;
    const double expect = total / n;
    double chi2 = 0.0;
    for (NodeId c = 0; c < n; ++c) {
        const double d = static_cast<double>(hist[c]) - expect;
        chi2 += d * d / expect;
    }
    EXPECT_LT(chi2, 1250.0) << "Lemire-reduced counter stream is non-uniform";
    EXPECT_GT(chi2, 750.0) << "suspiciously sub-random (draws not independent?)";
}

TEST(SparseKernels, CounterStreamDecorrelatesAdjacentSeedsAndReceivers) {
    // The regression this pins: XORing the lane counter into the UNMIXED
    // stream base made adjacent seeds (and adjacent receivers) permute the
    // same sample multiset instead of redrawing it. Sorted draw sets for
    // seed/seed^1 and receiver/receiver^1 must differ.
    const NodeId n = 500;
    const auto sorted_draws = [n](std::uint64_t seed, NodeId recv) {
        NodeId idx[32];
        const std::uint64_t h = net::kern::sparse_mixed_base(
            net::kern::sparse_stream_base(seed, 3, recv));
        net::kern::sparse_fill_indices(net::SparseStream::Counter, h, n, 0, 32,
                                       idx);
        std::vector<NodeId> v(idx, idx + 32);
        std::sort(v.begin(), v.end());
        return v;
    };
    EXPECT_NE(sorted_draws(0xABCD, 10), sorted_draws(0xABCE, 10));
    EXPECT_NE(sorted_draws(0xABCD, 10), sorted_draws(0xABCD, 11));
}

TEST(SparseKernels, CounterAndChainStreamsAgreeOnGuaranteesAcrossRegistry) {
    // Counter vs chain parity over the registry cross product: the two
    // frozen derivations draw DIFFERENT samples, so trajectories are not
    // bit-comparable sub-dense — but protocol guarantees cannot depend on
    // which healthy stream drew the sample. Unanimous inputs keep sampled
    // estimates exact at any degree, so agreement + validity must hold for
    // BOTH streams at every compatible (protocol, adversary) pair, and
    // split-input runs must complete without tripping asserts.
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = 64;
            s.t = max_t(*p, s.n);
            s.inputs = sim::InputPattern::AllOne;
            s.local_coin_phases = 8;
            s.max_rounds_override = 60;
            s.sparse_plane = true;
            s.sample_degree = 16;  // genuinely sub-dense
            // q=0 for the guarantee half: with actual corruptions, 16-draw
            // estimates can legitimately wobble past thresholds (a sampling
            // property, not a stream bug); with none, unanimous estimates
            // are exact and the guarantees are deterministic.
            s.q = 0;
            if (!sim::compatible(s)) continue;
            ++covered;
            for (const net::SparseStream stream :
                 {net::SparseStream::Counter, net::SparseStream::Chain}) {
                sim::Scenario v = s;
                v.sparse_stream = stream;
                SCOPED_TRACE(v.describe());
                const sim::Aggregate one = sim::run_trials(v, 0xBEEF, 2, {1, 0});
                EXPECT_EQ(one.agreement_failures, 0u);
                EXPECT_EQ(one.validity_failures, 0u);

                sim::Scenario split = v;
                split.inputs = sim::InputPattern::Split;
                split.q.reset();  // full corruption budget: worst-case noise
                const sim::Aggregate sp = sim::run_trials(split, 0xBEEF, 2, {1, 0});
                EXPECT_EQ(sp.trials, 2u);  // completion, not decisions
            }
        }
    }
    EXPECT_GE(covered, 40u) << "registry coverage unexpectedly low";
}

TEST(SparseKernels, ProbeBlockMatchesScalarDerivationAcrossTailLengths) {
    // sparse_probe_block dispatches the counter stream to an AVX-512
    // kernel when the host CPU has one; this pins the dispatched path
    // bit-identical to the portable derivation + a handwritten count —
    // indices, honest counts, AND the Byzantine lane mask — at a
    // non-power-of-two n for every tail length 1..kSparseBlock (the
    // masked-lane edge cases). Dispatch is a speed choice, never a
    // stream version.
    Xoshiro256 rng(0xBEEFu);
    const NodeId n = 100003;  // prime: exercises the Lemire reduction
    std::vector<std::uint64_t> code(2 * ((n + 63) / 64));
    for (auto& w : code) w = rng();
    for (NodeId k = 1; k <= net::kern::kSparseBlock; ++k) {
        const std::uint64_t h = net::kern::sparse_mixed_base(
            net::kern::sparse_stream_base(rng(), Round{3}, NodeId{41 + k}));
        NodeId ref_idx[net::kern::kSparseBlock];
        net::kern::sparse_fill_indices(net::SparseStream::Counter, h, n,
                                       NodeId{7}, k, ref_idx);
        std::array<Count, 2> ref{0, 0};
        std::uint64_t ref_mask = 0;
        for (NodeId j = 0; j < k; ++j) {
            const NodeId u = ref_idx[j];
            const std::uint64_t cw = code[u / 32] >> (u % 32 * 2) & 3u;
            if (cw == net::kern::kSparseCodeByz)
                ref_mask |= std::uint64_t{1} << j;
            else if (cw == net::kern::kSparseCodeVal0)
                ++ref[0];
            else if (cw == net::kern::kSparseCodeVal1)
                ++ref[1];
        }
        NodeId idx[net::kern::kSparseBlock];
        std::array<Count, 2> c{0, 0};
        std::uint64_t h2 = h;
        const std::uint64_t mask = net::kern::sparse_probe_block(
            net::SparseStream::Counter, h2, n, NodeId{7}, k, code.data(),
            idx, c);
        ASSERT_EQ(h2, h) << "counter stream must not advance h";
        ASSERT_EQ(mask, ref_mask) << "tail " << k;
        ASSERT_EQ(c, ref) << "tail " << k;
        for (NodeId j = 0; j < k; ++j)
            ASSERT_EQ(idx[j], ref_idx[j]) << "tail " << k << " lane " << j;
    }
}

TEST(SparsePlaneUnit, OwnsNoMaterializedSampleTables) {
    // The memory model: samples are re-derived from (seed, round, receiver,
    // i), so the plane owns no per-edge storage at any n. Its only heap is
    // the per-query 2-bit code plane — 2 bits per SENDER, independent of
    // degree and receiver count — so the bound is O(n/4) bytes (plus
    // vector slack), far below the O(n * degree) of a materialized sample
    // table.
    net::SparsePlane p;
    p.reset(NodeId{1} << 20, 64, 42);
    EXPECT_GT(p.memory_bytes(), 0u);  // the code plane is real and reported
    EXPECT_LE(p.memory_bytes(), static_cast<std::size_t>(p.n()) / 4 + 1024);
    EXPECT_LT(p.memory_bytes(),
              static_cast<std::size_t>(p.n()) * p.degree() * sizeof(NodeId) / 100);
    // Dense mode never probes through the code plane and owns nothing.
    p.reset(NodeId{1} << 10, NodeId{1} << 10, 42);
    EXPECT_EQ(p.memory_bytes(), 0u);
}

}  // namespace
}  // namespace adba
