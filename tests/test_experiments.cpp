// Miniature versions of every bench experiment (E1-E13): each bench's code
// path and headline direction is asserted here at small scale, so a
// regression in any experiment pipeline fails in CI rather than in a
// reader's terminal.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "sim/coin_runner.hpp"
#include "sim/macro.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"
#include "support/math.hpp"

namespace adba::sim {
namespace {

Aggregate run(ProtocolKind p, AdversaryKind a, NodeId n, Count t, Count trials,
              InputPattern in = InputPattern::Split,
              std::optional<Count> q = std::nullopt) {
    Scenario s;
    s.n = n;
    s.t = t;
    s.q = q;
    s.protocol = p;
    s.adversary = a;
    s.inputs = in;
    return run_trials(s, 0xEE0 + n * 7 + t, trials);
}

TEST(E1Mini, CoinCommonnessEndpoints) {
    // f=0: always common; f = 2 sqrt(n): almost never.
    const auto clean = run_coin_trials({144, 144, 0, adv::CoinAttack::Split, 0}, 1, 300);
    EXPECT_EQ(clean.common, clean.trials);
    const auto wrecked =
        run_coin_trials({144, 144, 24, adv::CoinAttack::Split, 0}, 2, 300);
    EXPECT_LE(wrecked.p_common(), 0.1);
}

TEST(E2Mini, CommitteePerimeterIndependentOfN) {
    // Same k, two very different n: commonness within noise of each other.
    const auto small_n = run_coin_trials({128, 36, 3, adv::CoinAttack::Split, 0}, 3, 800);
    const auto big_n = run_coin_trials({1024, 36, 3, adv::CoinAttack::Split, 0}, 4, 800);
    EXPECT_NEAR(small_n.p_common(), big_n.p_common(), 0.12);
}

TEST(E3Mini, OrderingOfProtocols) {
    const NodeId n = 64;
    const Count t = 12;
    const auto ours = run(ProtocolKind::Ours, AdversaryKind::WorstCase, n, t, 10);
    const auto cc = run(ProtocolKind::ChorCoanRushing, AdversaryKind::WorstCase, n, t, 10);
    const auto pk = run(ProtocolKind::PhaseKing, AdversaryKind::KingKiller, n, t, 3);
    const auto dealer = run(ProtocolKind::RabinDealer, AdversaryKind::SplitVote, n, t, 10);
    EXPECT_EQ(ours.agreement_failures, 0u);
    // ours never exceeds the rushing Chor-Coan comparator (same alpha):
    EXPECT_LE(ours.rounds.mean(), cc.rounds.mean() + 1e-9);
    // the deterministic baseline is the exact 2(t+1) line:
    EXPECT_DOUBLE_EQ(pk.rounds.mean(), 2.0 * (t + 1));
    // the ideal dealer coin is the flat floor:
    EXPECT_LE(dealer.rounds.mean(), 8.0);
    EXPECT_LT(dealer.rounds.mean(), ours.rounds.mean());
}

TEST(E4Mini, MacroSeparationAtSqrtN) {
    // t = sqrt(n): ours' phase budget stops growing with t while the
    // Chor-Coan schedule keeps paying t/log n — the ratio at n=2^16 must
    // already be visibly below 1 (the bench shows it falling with n).
    const std::uint64_t n = 1 << 16;
    const std::uint64_t t = 256;
    double ours = 0, cc = 0;
    for (int i = 0; i < 12; ++i) {
        MacroScenario m;
        m.n = n;
        m.t = t;
        m.q = t;
        m.schedule = MacroScheduleKind::Ours;
        ours += static_cast<double>(run_macro_trial(m, 50 + static_cast<std::uint64_t>(i)).rounds);
        m.schedule = MacroScheduleKind::ChorCoanRushing;
        cc += static_cast<double>(run_macro_trial(m, 50 + static_cast<std::uint64_t>(i)).rounds);
    }
    EXPECT_LT(ours / cc, 0.85);
}

TEST(E5Mini, EarlyTerminationEndpoints) {
    const auto q0 = run(ProtocolKind::Ours, AdversaryKind::WorstCase, 128, 42, 8,
                        InputPattern::Split, Count{0});
    EXPECT_DOUBLE_EQ(q0.rounds.mean(), 6.0);
    const auto qfull = run(ProtocolKind::Ours, AdversaryKind::WorstCase, 128, 42, 8,
                           InputPattern::Split, Count{42});
    EXPECT_GT(qfull.rounds.mean(), 3.0 * q0.rounds.mean());
}

TEST(E6Mini, MessagesBoundedByBroadcastBudget) {
    const NodeId n = 64;
    const auto agg = run(ProtocolKind::Ours, AdversaryKind::WorstCase, n, 21, 5);
    EXPECT_LE(agg.messages.max(),
              static_cast<double>(n) * (n - 1) * agg.rounds.max());
    EXPECT_GE(agg.messages.min(), static_cast<double>(n - 21) * (n - 1) * 2);
}

TEST(E7Mini, LasVegasAlwaysTerminates) {
    const auto agg = run(ProtocolKind::OursLasVegas, AdversaryKind::WorstCase, 96, 31, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

TEST(E8Mini, AdaptiveRushingIsTheOnlyExpensiveClass) {
    const NodeId n = 96;
    const Count t = 31;
    const auto none = run(ProtocolKind::Ours, AdversaryKind::None, n, t, 6);
    const auto stat = run(ProtocolKind::Ours, AdversaryKind::Static, n, t, 6);
    const auto worst = run(ProtocolKind::Ours, AdversaryKind::WorstCase, n, t, 6);
    EXPECT_LE(none.rounds.mean(), 6.0);
    EXPECT_LE(stat.rounds.mean(), 10.0) << "static adversaries are absorbed";
    EXPECT_GT(worst.rounds.mean(), 3.0 * stat.rounds.mean());
}

TEST(E9Mini, AlphaBoundaryMeasured) {
    // alpha=1 must fail visibly at the hardest cell; alpha=4 (default) never.
    core::Tuning weak;
    weak.alpha = 1.0;
    Scenario s;
    s.n = 64;
    s.t = 21;
    s.protocol = ProtocolKind::Ours;
    s.adversary = AdversaryKind::WorstCase;
    s.inputs = InputPattern::Split;
    s.tuning = weak;
    const auto bad = run_trials(s, 0xE9, 25);
    EXPECT_GT(bad.agreement_failures, 5u) << "alpha=1 should lose most runs here";
    s.tuning = core::Tuning{};
    const auto good = run_trials(s, 0xE9, 25);
    EXPECT_EQ(good.agreement_failures, 0u);
}

TEST(E11Mini, SamplingFrontierDirection) {
    const auto low = run(ProtocolKind::SamplingMajority, AdversaryKind::Balancer, 144, 3,
                         8);
    EXPECT_EQ(low.agreement_failures, 0u);
}

TEST(E12Mini, MultiValuedSafetyAcrossBand) {
    MvScenario s;
    s.n = 48;
    s.t = 15;
    s.inputs = MvInputPattern::NearQuorum;
    s.adversary = MvAdversaryKind::PreludePlusWorstCase;
    const auto agg = run_mv_trials(s, 0xE12, 8);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
}

TEST(E13Mini, CrashCheaperThanByzantinePerRound) {
    const NodeId n = 128;
    const Count t = 42;
    const auto crash =
        run(ProtocolKind::Ours, AdversaryKind::CrashTargetedCoin, n, t, 10);
    const auto byz = run(ProtocolKind::Ours, AdversaryKind::WorstCase, n, t, 10);
    EXPECT_EQ(crash.agreement_failures, 0u);
    EXPECT_LE(crash.rounds.mean(), byz.rounds.mean() + 1e-9)
        << "a crash budget never beats the full Byzantine budget";
    EXPECT_GE(crash.rounds.mean(), 6.0);
}

TEST(TheoryCurves, CrossoverConsistency) {
    // The bench footer's crossover formula matches the bound curves.
    const double n = 4096.0;
    const double cross = an::crossover_t(n);
    EXPECT_NEAR(an::rounds_ours(n, cross), an::rounds_chor_coan(n, cross),
                1e-9 * an::rounds_ours(n, cross));
    EXPECT_LT(an::rounds_ours(n, cross / 2), an::rounds_chor_coan(n, cross / 2));
}

}  // namespace
}  // namespace adba::sim
