// Attack-economics property tests: Theorem 2's counting argument says a
// phase coin can only be ruined by ~½·sqrt(s) corruptions, so budget t
// buys ~2t/sqrt(s) ruined phases. These tests measure the adversary's
// actual bill and the resulting round structure, pinning the mechanism the
// whole paper stands on (not just its end-to-end effect).
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/worst_case.hpp"
#include "core/agreement.hpp"
#include "net/engine.hpp"
#include "sim/inputs.hpp"
#include "sim/runner.hpp"
#include "support/math.hpp"

namespace adba::sim {
namespace {

struct EconomicsRun {
    double corruptions = 0;
    double ruined = 0;
    Round rounds = 0;
    bool agreement = false;
    NodeId committee_size = 0;
};

EconomicsRun run_once(NodeId n, Count t, std::uint64_t seed) {
    const SeedTree seeds(seed);
    const auto params = core::AgreementParams::compute(n, t);
    auto nodes = core::make_algorithm3_nodes(
        params, core::AgreementMode::WhpFixedPhases,
        make_inputs(InputPattern::Split, n, seeds), seeds);
    adv::WorstCaseAdversary adversary({t, t, params.schedule, true});
    net::Engine eng({n, t, core::max_rounds_whp(params), false}, std::move(nodes),
                    adversary);
    const auto res = eng.run();
    EconomicsRun out;
    out.corruptions = static_cast<double>(res.metrics.corruptions);
    out.ruined = adversary.phases_ruined();
    out.rounds = res.rounds;
    out.agreement = res.agreement();
    out.committee_size = params.schedule.block;
    return out;
}

TEST(AttackEconomics, RuinCostScalesWithSqrtCommitteeSize) {
    // Mean corruptions per ruined phase must sit in a constant band around
    // 0.4*sqrt(s)+0.5 (E|S|/2 plus rounding): the sqrt law is the paper's
    // entire leverage. Checked across committee sizes differing by 4x.
    struct Cell {
        NodeId n;
        Count t;
    };
    // Committee size s = n / phases; larger t -> smaller committees.
    for (const Cell cell : {Cell{256, 85}, Cell{256, 24}, Cell{1024, 48}}) {
        double corruptions = 0, ruined = 0;
        NodeId s_size = 0;
        for (std::uint64_t seed = 0; seed < 12; ++seed) {
            const auto r = run_once(cell.n, cell.t, 0xEC0 + seed);
            corruptions += r.corruptions;
            ruined += r.ruined;
            s_size = r.committee_size;
        }
        ASSERT_GT(ruined, 0.0);
        const double cost = corruptions / ruined;
        const double predicted = 0.4 * std::sqrt(static_cast<double>(s_size)) + 0.5;
        EXPECT_GE(cost, 0.45 * predicted)
            << "n=" << cell.n << " t=" << cell.t << " s=" << s_size;
        EXPECT_LE(cost, 2.2 * predicted)
            << "n=" << cell.n << " t=" << cell.t << " s=" << s_size;
    }
}

TEST(AttackEconomics, RoundsAreExactlyRuinedPhasesPlusTermination) {
    // Under split inputs the worst-case dynamics are rigid: the adversary
    // ruins phases 0..k-1, phase k is good, everyone decides in k+1 and
    // flushes through k+2 — the engine must report exactly 2(k+3) rounds.
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        const auto r = run_once(128, 42, 0xEC1 + seed);
        ASSERT_TRUE(r.agreement);
        EXPECT_EQ(r.rounds, 2 * (static_cast<Round>(r.ruined) + 3)) << seed;
    }
}

TEST(AttackEconomics, BudgetCapsRuinedPhases) {
    // Every ruined phase costs >= 1 corruption while committees are fresh,
    // so ruined <= corruptions always at these scales (no committee reuse
    // before budget exhaustion).
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto r = run_once(256, 40, 0xEC2 + seed);
        EXPECT_LE(r.ruined, r.corruptions) << seed;
        EXPECT_LE(r.corruptions, 40.0) << seed;
    }
}

TEST(AttackEconomics, DoublingBudgetRoughlyDoublesRounds) {
    // In the budget-bound regime rounds ~ 2*(q / cost) + O(1): linearity in
    // the budget is the t/log n branch of Theorem 2 made visible.
    double rounds_small = 0, rounds_big = 0;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        Scenario s;
        s.n = 256;
        s.t = 85;
        s.protocol = ProtocolKind::Ours;
        s.adversary = AdversaryKind::WorstCase;
        s.inputs = InputPattern::Split;
        s.q = 20;
        rounds_small += static_cast<double>(run_trial(s, 0xEC3 + seed).rounds);
        s.q = 40;
        rounds_big += static_cast<double>(run_trial(s, 0xEC3 + seed).rounds);
    }
    const double ratio = rounds_big / rounds_small;
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 2.6);
}

}  // namespace
}  // namespace adba::sim
