// Tests for the extension modules: sampling-majority (APR 2013, paper
// §1.3), Ben-Or 1983 proper, the Turpin-Coan multi-valued reduction over
// Algorithm 3, and the balancer / prelude / composite adversaries.
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/balancer.hpp"
#include "adversary/chaos.hpp"
#include "adversary/composite.hpp"
#include "baselines/ben_or.hpp"
#include "baselines/sampling_majority.hpp"
#include "core/multivalued.hpp"
#include "sim/multivalued_runner.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"
#include "support/math.hpp"

namespace adba::sim {
namespace {

// -------------------------------------------------------- sampling majority

TEST(SamplingMajority, ParamsPolylogRounds) {
    const auto p = base::SamplingMajorityParams::compute(1024, 16, 3.0);
    EXPECT_EQ(p.rounds, 300u);  // 3 * 10^2
    EXPECT_THROW(base::SamplingMajorityParams::compute(9, 3), ContractViolation);
}

TEST(SamplingMajority, ConvergesWithoutAdversary) {
    Scenario s;
    s.n = 128;
    s.t = 0;
    s.protocol = ProtocolKind::SamplingMajority;
    s.adversary = AdversaryKind::None;
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 0x5A1, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

TEST(SamplingMajority, ValidityStyleStability) {
    // All-same start: the absorbing state must hold even with Byzantine
    // samples pulling the other way (t well below sqrt(n)).
    Scenario s;
    s.n = 256;
    s.t = 4;
    s.protocol = ProtocolKind::SamplingMajority;
    s.adversary = AdversaryKind::Balancer;
    s.inputs = InputPattern::AllOne;
    const Aggregate agg = run_trials(s, 0x5A2, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
}

TEST(SamplingMajority, ToleratesSqrtScaleByzantine) {
    // t ~ sqrt(n)/log n (the APR regime): still converges under the
    // balancer within the polylog budget.
    const NodeId n = 256;
    const auto t = static_cast<Count>(isqrt(n) / 4);  // 4
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::SamplingMajority;
    s.adversary = AdversaryKind::Balancer;
    s.inputs = InputPattern::Split;
    const Aggregate agg = run_trials(s, 0x5A3, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
}

TEST(SamplingMajority, BalancerDelaysConvergence) {
    // Stalling the drift costs the balancer ~sqrt(n) corruptions per round,
    // so a budget of q buys ~q/sqrt(n) rounds of enforced balance. Measure
    // the first round at which all honest values agree: a big balancer
    // must push it out relative to a trivial one.
    const NodeId n = 196;
    auto mean_first_agree = [&](Count t) {
        double total = 0.0;
        const int trials = 12;
        for (int i = 0; i < trials; ++i) {
            const SeedTree seeds(0x5A4 + static_cast<std::uint64_t>(i));
            const auto params = base::SamplingMajorityParams::compute(n, t, 4.0);
            auto nodes = base::make_sampling_majority_nodes(
                params, make_inputs(InputPattern::Split, n, seeds), seeds);
            adv::MajorityBalancerAdversary adversary({t, 0});
            net::Engine eng({n, t, params.rounds + 1, false}, std::move(nodes),
                            adversary);
            Round first_agree = params.rounds;
            bool found = false;
            eng.set_round_observer([&](Round r, const auto& live, const auto& honest) {
                if (found) return;
                std::optional<Bit> v;
                for (NodeId u = 0; u < live.size(); ++u) {
                    if (!honest[u]) continue;
                    const Bit b = live[u]->current_value();
                    if (!v) {
                        v = b;
                    } else if (*v != b) {
                        return;  // not yet agreed
                    }
                }
                first_agree = r;
                found = true;
            });
            eng.run();
            total += static_cast<double>(first_agree);
        }
        return total / 12.0;
    };
    const double small_adv = mean_first_agree(2);
    const double big_adv = mean_first_agree(60);  // >> sqrt(196) = 14
    EXPECT_GT(big_adv, small_adv)
        << "a sqrt(n)-scale balancer must delay full agreement";
}

// ------------------------------------------------------------------ Ben-Or

TEST(BenOr, RejectsFifthBound) {
    EXPECT_THROW(base::BenOrNode({10, 2, 4}, 0, 0, Xoshiro256(1)), ContractViolation);
    EXPECT_NO_THROW(base::BenOrNode({11, 2, 4}, 0, 0, Xoshiro256(1)));
}

using BenOrParam = std::tuple<NodeId, Count, AdversaryKind, InputPattern>;

class BenOrSweep : public ::testing::TestWithParam<BenOrParam> {};

TEST_P(BenOrSweep, SafetyAndEventualAgreement) {
    const auto [n, t, adversary, inputs] = GetParam();
    Scenario s;
    s.n = n;
    s.t = t;
    s.protocol = ProtocolKind::BenOr;
    s.adversary = adversary;
    s.inputs = inputs;
    s.local_coin_phases = 512;  // exponential expected; small n keeps it sane
    const Aggregate agg = run_trials(s, 0xB0 + n + t, 5);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BenOrSweep,
    ::testing::Combine(::testing::Values<NodeId>(11, 16, 21),
                       ::testing::Values<Count>(1, 2),
                       ::testing::Values(AdversaryKind::None, AdversaryKind::Static,
                                         AdversaryKind::SplitVote,
                                         AdversaryKind::CrashRandom),
                       ::testing::Values(InputPattern::AllZero, InputPattern::AllOne,
                                         InputPattern::Split)));

TEST(BenOr, UnanimousDecidesInOnePhase) {
    Scenario s;
    s.n = 16;
    s.t = 3;
    s.protocol = ProtocolKind::BenOr;
    s.adversary = AdversaryKind::SplitVote;
    s.inputs = InputPattern::AllOne;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const TrialResult r = run_trial(s, seed);
        EXPECT_TRUE(r.agreement);
        EXPECT_TRUE(r.validity_ok);
        EXPECT_LE(r.rounds, 6u);
    }
}

TEST(BenOr, MuchSlowerThanCommitteeCoinFromSplit) {
    Scenario benor;
    benor.n = 16;
    benor.t = 3;
    benor.q = 0;
    benor.protocol = ProtocolKind::BenOr;
    benor.adversary = AdversaryKind::None;
    benor.inputs = InputPattern::Split;
    benor.local_coin_phases = 2048;
    Scenario ours = benor;
    ours.protocol = ProtocolKind::Ours;
    const auto agg_benor = run_trials(benor, 0xB1, 8);
    const auto agg_ours = run_trials(ours, 0xB1, 8);
    EXPECT_EQ(agg_benor.agreement_failures, 0u);
    EXPECT_GT(agg_benor.rounds.mean(), agg_ours.rounds.mean());
}

// ------------------------------------------------------------- multi-valued

using MvParam = std::tuple<NodeId, Count, MvAdversaryKind, MvInputPattern>;

class MultiValuedSweep : public ::testing::TestWithParam<MvParam> {};

TEST_P(MultiValuedSweep, AgreementValidityTermination) {
    const auto [n, t, adversary, inputs] = GetParam();
    MvScenario s;
    s.n = n;
    s.t = t;
    s.adversary = adversary;
    s.inputs = inputs;
    const MvAggregate agg = run_mv_trials(s, 0x717 + n + t, 5);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.validity_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiValuedSweep,
    ::testing::Combine(::testing::Values<NodeId>(16, 32, 64),
                       ::testing::Values<Count>(1, 5),
                       ::testing::Values(MvAdversaryKind::None, MvAdversaryKind::Chaos,
                                         MvAdversaryKind::WorstCaseInner,
                                         MvAdversaryKind::PreludePlusWorstCase),
                       ::testing::Values(MvInputPattern::AllSame,
                                         MvInputPattern::TwoBlocks,
                                         MvInputPattern::Distinct,
                                         MvInputPattern::RandomTiny,
                                         MvInputPattern::NearQuorum)));

TEST(MultiValued, NearQuorumBandIsSafeUnderPreludeSplit) {
    // The only regime where the prelude can split the derived binary inputs:
    // 60% share a word, and h_w < n-t <= h_w + q. Safety (one common output,
    // never an invented word) must survive; liveness may route through the
    // inner protocol's coin phases.
    MvScenario s;
    s.n = 96;
    s.t = 31;
    s.adversary = MvAdversaryKind::PreludePlusWorstCase;
    s.inputs = MvInputPattern::NearQuorum;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const MvTrialResult r = run_mv_trial(s, seed);
        EXPECT_TRUE(r.agreement) << seed;
        ASSERT_TRUE(r.agreed_word.has_value());
        EXPECT_TRUE(*r.agreed_word == 0xAAAA || *r.agreed_word == 0) << std::hex
                                                                     << *r.agreed_word;
    }
}

TEST(MultiValued, UnanimousInputWinsDespitePreludeAttack) {
    MvScenario s;
    s.n = 64;
    s.t = 21;
    s.adversary = MvAdversaryKind::PreludePlusWorstCase;
    s.inputs = MvInputPattern::AllSame;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const MvTrialResult r = run_mv_trial(s, seed);
        EXPECT_TRUE(r.agreement);
        ASSERT_TRUE(r.agreed_word.has_value());
        EXPECT_EQ(*r.agreed_word, 0xCAFEu) << "validity: the unanimous word must win";
        EXPECT_TRUE(r.decided_real);
    }
}

TEST(MultiValued, FragmentedInputsFallBackConsistently) {
    // With every input distinct no word can reach a quorum; the binary
    // protocol must decide 0 at everyone and all honest output the fallback.
    MvScenario s;
    s.n = 32;
    s.t = 10;
    s.adversary = MvAdversaryKind::WorstCaseInner;
    s.inputs = MvInputPattern::Distinct;
    s.fallback = 0x0D0D;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const MvTrialResult r = run_mv_trial(s, seed);
        EXPECT_TRUE(r.agreement);
        ASSERT_TRUE(r.agreed_word.has_value());
        if (!r.decided_real) {
            EXPECT_EQ(*r.agreed_word, 0x0D0Du);
        }
    }
}

TEST(MultiValued, TwoBlocksNeverInventsAWord) {
    // Agreement may land on either block's word or the fallback — never on
    // an adversary-invented word.
    MvScenario s;
    s.n = 48;
    s.t = 15;
    s.adversary = MvAdversaryKind::PreludePlusWorstCase;
    s.inputs = MvInputPattern::TwoBlocks;
    s.fallback = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const MvTrialResult r = run_mv_trial(s, seed);
        EXPECT_TRUE(r.agreement);
        ASSERT_TRUE(r.agreed_word.has_value());
        const net::Word w = *r.agreed_word;
        EXPECT_TRUE(w == 0xAAAA || w == 0xBBBB || w == 0) << std::hex << w;
    }
}

TEST(MultiValued, LasVegasModeAlwaysAgrees) {
    MvScenario s;
    s.n = 48;
    s.t = 15;
    s.adversary = MvAdversaryKind::PreludePlusWorstCase;
    s.inputs = MvInputPattern::NearQuorum;
    s.las_vegas = true;
    const MvAggregate agg = run_mv_trials(s, 0x1A5, 10);
    EXPECT_EQ(agg.agreement_failures, 0u);
    EXPECT_EQ(agg.not_halted, 0u) << "Las Vegas inner must self-terminate";
}

TEST(MultiValued, RoundsAreBinaryPlusTwo) {
    MvScenario s;
    s.n = 32;
    s.t = 0;
    s.adversary = MvAdversaryKind::None;
    s.inputs = MvInputPattern::AllSame;
    const MvTrialResult r = run_mv_trial(s, 1);
    // Prelude (2) + unanimous binary run (locks immediately: <= 6).
    EXPECT_LE(r.rounds, 8u);
    EXPECT_TRUE(r.all_halted);
}

// --------------------------------------------------------------- composite

TEST(SwitchAdversary, DelegatesByRound) {
    // Chaos for the first 2 rounds, nothing afterwards: corruptions can
    // only happen early.
    auto first = std::make_unique<adv::ChaosAdversary>(adv::ChaosConfig{3, 1.0, 0.5},
                                                       Xoshiro256(3));
    auto second = std::make_unique<net::NullAdversary>();
    adv::SwitchAdversary sw(std::move(first), std::move(second), 2);

    Scenario s;  // reuse the runner's protocol factory via a manual engine
    s.n = 16;
    s.t = 3;
    const SeedTree seeds(9);
    const auto params = core::AgreementParams::compute(16, 3);
    auto nodes = core::make_algorithm3_nodes(
        params, core::AgreementMode::WhpFixedPhases,
        make_inputs(InputPattern::Split, 16, seeds), seeds);
    net::Engine eng({16, 3, core::max_rounds_whp(params), true}, std::move(nodes), sw);
    const auto res = eng.run();
    ASSERT_TRUE(res.transcript.has_value());
    for (const auto& round : res.transcript->rounds()) {
        if (round.round >= 2) {
            EXPECT_TRUE(round.new_corruptions.empty());
        }
    }
}

}  // namespace
}  // namespace adba::sim
