// Fine-grained tests of the Rabin skeleton's receive paths (Algorithm 3's
// threshold cases) using hand-crafted delivery views — byte-level checks of
// the rules that the sweep tests exercise only end-to-end.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/agreement.hpp"
#include "core/params.hpp"
#include "core/skeleton.hpp"
#include "support/contracts.hpp"

namespace adba::core {
namespace {

/// Scriptable delivery source: one optional message per sender. Converts
/// implicitly to a ReceiveView over the virtual adapter backend, so call
/// sites hand it straight to round_receive.
class FakeView final : public net::DeliverySource {
public:
    FakeView(NodeId n, NodeId recv) : n_(n), recv_(recv), slots_(n) {}

    void put(NodeId from, net::Message m) { slots_[from] = m; }
    void clear(NodeId from) { slots_[from].reset(); }

    const net::Message* delivery(NodeId, NodeId sender) const override {
        return slots_[sender] ? &*slots_[sender] : nullptr;
    }
    NodeId n() const override { return n_; }

    operator net::ReceiveView() const { return net::ReceiveView(*this, recv_); }

private:
    NodeId n_;
    NodeId recv_;
    std::vector<std::optional<net::Message>> slots_;
};

net::Message vote1(Phase p, Bit val, bool decided = false) {
    net::Message m;
    m.kind = net::MsgKind::Vote1;
    m.phase = p;
    m.val = val;
    m.flag = decided ? 1 : 0;
    return m;
}

net::Message vote2(Phase p, Bit val, bool decided, CoinSign coin = 0) {
    net::Message m;
    m.kind = net::MsgKind::Vote2;
    m.phase = p;
    m.val = val;
    m.flag = decided ? 1 : 0;
    m.coin = coin;
    return m;
}

/// n=10, t=3 instance of Algorithm 3 node `self` with input 0.
Algorithm3Node make_node(NodeId self = 0, Bit input = 0) {
    const auto params = AgreementParams::compute(10, 3);
    return Algorithm3Node(params, AgreementMode::WhpFixedPhases, self, input,
                          Xoshiro256(42));
}

TEST(SkeletonRound1, QuorumSetsValAndDecided) {
    auto node = make_node();
    (void)node.round_send(0);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 7; ++u) view.put(u, vote1(0, 1));  // n-t = 7 ones
    node.round_receive(0, view);
    EXPECT_EQ(node.current_value(), 1);
    EXPECT_TRUE(node.current_decided());
}

TEST(SkeletonRound1, OneShortOfQuorumLeavesUndecided) {
    auto node = make_node(0, /*input=*/1);
    (void)node.round_send(0);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 6; ++u) view.put(u, vote1(0, 0));  // 6 < 7
    node.round_receive(0, view);
    EXPECT_FALSE(node.current_decided());
    EXPECT_EQ(node.current_value(), 1) << "val must be untouched below quorum";
}

TEST(SkeletonRound1, DecidedFlagOnVote1DoesNotMatter) {
    // Line 12 counts (i,1,b,*) regardless of the sender's decided flag.
    auto node = make_node();
    (void)node.round_send(0);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 7; ++u) view.put(u, vote1(0, 1, u % 2 == 0));
    node.round_receive(0, view);
    EXPECT_TRUE(node.current_decided());
    EXPECT_EQ(node.current_value(), 1);
}

TEST(SkeletonRound1, WrongPhaseAndKindIgnored) {
    auto node = make_node();
    (void)node.round_send(0);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 5; ++u) view.put(u, vote1(1, 1));       // stale phase
    for (NodeId u = 5; u < 9; ++u) view.put(u, vote2(0, 1, true)); // wrong kind
    node.round_receive(0, view);
    EXPECT_FALSE(node.current_decided());
}

TEST(SkeletonRound2, FinishAtQuorumDecided) {
    auto node = make_node();
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));  // empty: undecided
    (void)node.round_send(1);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 7; ++u) view.put(u, vote2(0, 0, true));
    node.round_receive(1, view);
    EXPECT_TRUE(node.current_decided());
    EXPECT_TRUE(node.finish_flag());
    ASSERT_TRUE(node.finish_phase().has_value());
    EXPECT_EQ(*node.finish_phase(), 0u);
    EXPECT_EQ(node.current_value(), 0);
}

TEST(SkeletonRound2, SuperminorityAdoptsWithoutFinish) {
    auto node = make_node();
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 4; ++u) view.put(u, vote2(0, 1, true));  // t+1 = 4
    node.round_receive(1, view);
    EXPECT_TRUE(node.current_decided());
    EXPECT_FALSE(node.finish_flag());
    EXPECT_EQ(node.current_value(), 1);
}

TEST(SkeletonRound2, UndecidedMessagesDoNotCountTowardDecidedThresholds) {
    auto node = make_node();
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 9; ++u) view.put(u, vote2(0, 1, false));  // no flags
    node.round_receive(1, view);
    EXPECT_FALSE(node.current_decided()) << "case 3 must fire";
}

TEST(SkeletonRound2, CoinAdoptedWhenNoDecidedQuorum) {
    // Committee of phase 0 is IDs [0, s). n=10, t=3 with alpha=4:
    // phases = max(min(4*1*4, ceil(36/4)), 8) = max(min(16,9),8) = 9 -> s=2.
    const auto params = AgreementParams::compute(10, 3);
    ASSERT_GE(params.schedule.block, 1u);
    auto node = make_node(/*self=*/9);  // not in committee 0 for s <= 5
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView view(10, 9);
    // Committee members all flip -1 -> coin 0.
    for (NodeId u = 0; u < params.schedule.block; ++u)
        view.put(u, vote2(0, 0, false, -1));
    node.round_receive(1, view);
    EXPECT_FALSE(node.current_decided());
    EXPECT_EQ(node.current_value(), 0);
}

TEST(SkeletonRound2, CoinTieBreaksToOne) {
    auto node = make_node(9);
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 9));
    (void)node.round_send(1);
    node.round_receive(1, FakeView(10, 9));  // nobody speaks: sum 0 -> 1
    EXPECT_EQ(node.current_value(), 1);
}

TEST(SkeletonRound2, NonCommitteeCoinsIgnored) {
    const auto params = AgreementParams::compute(10, 3);
    auto node = make_node(9);
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 9));
    (void)node.round_send(1);
    FakeView view(10, 9);
    // A flood of -1 coins from NON-committee senders must not outvote the
    // committee's +1s ("messages from byzantine nodes not in the committee
    // are ignored").
    const NodeId s = params.schedule.block;
    for (NodeId u = 0; u < s; ++u) view.put(u, vote2(0, 0, false, +1));
    for (NodeId u = s; u < 9; ++u) view.put(u, vote2(0, 0, false, -1));
    node.round_receive(1, view);
    EXPECT_EQ(node.current_value(), 1);
}

TEST(SkeletonCoinSum, ClampsWildCoinValues) {
    FakeView view(6, 0);
    auto wild = vote2(0, 0, false);
    wild.coin = 5;  // Byzantine garbage: must count as +1, not +5
    view.put(0, wild);
    auto wild2 = vote2(0, 0, false);
    wild2.coin = -7;
    view.put(1, wild2);
    EXPECT_EQ(committee_coin_sum(view, 0, 0, 6), 0);
}

TEST(SkeletonCoinSum, RespectsRangeAndPhase) {
    FakeView view(6, 0);
    view.put(0, vote2(0, 0, false, +1));
    view.put(1, vote2(1, 0, false, +1));  // wrong phase
    view.put(5, vote2(0, 0, false, +1));  // outside [0, 3)
    EXPECT_EQ(committee_coin_sum(view, 0, 0, 3), 1);
}

TEST(SkeletonFlush, FinisherBroadcastsOneFullPhaseThenHalts) {
    auto node = make_node();
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView view(10, 0);
    for (NodeId u = 0; u < 7; ++u) view.put(u, vote2(0, 1, true));
    node.round_receive(1, view);  // Finish fires
    ASSERT_TRUE(node.finish_flag());
    EXPECT_FALSE(node.halted());

    // Flush phase: both broadcasts still carry (val, decided).
    const auto m1 = node.round_send(2);
    ASSERT_TRUE(m1.has_value());
    EXPECT_EQ(m1->kind, net::MsgKind::Vote1);
    EXPECT_EQ(m1->val, 1);
    EXPECT_EQ(m1->flag, 1);
    EXPECT_FALSE(node.halted());
    node.round_receive(2, FakeView(10, 0));  // ignored while flushing

    const auto m2 = node.round_send(3);
    ASSERT_TRUE(m2.has_value());
    EXPECT_EQ(m2->kind, net::MsgKind::Vote2);
    EXPECT_EQ(m2->val, 1);
    EXPECT_EQ(m2->flag, 1);
    EXPECT_TRUE(node.halted()) << "halts right after the final broadcast";
    EXPECT_EQ(node.output(), 1);
}

TEST(SkeletonFlush, FlushIgnoresContradictoryDeliveries) {
    auto node = make_node();
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView finish_view(10, 0);
    for (NodeId u = 0; u < 7; ++u) finish_view.put(u, vote2(0, 0, true));
    node.round_receive(1, finish_view);
    ASSERT_TRUE(node.finish_flag());

    (void)node.round_send(2);
    FakeView poison(10, 0);
    for (NodeId u = 0; u < 10; ++u) poison.put(u, vote1(1, 1));
    node.round_receive(2, poison);
    EXPECT_EQ(node.current_value(), 0) << "flushing nodes are immutable";
}

TEST(SkeletonEnd, HaltsAtPhaseBudgetWithoutFinish) {
    const auto params = AgreementParams::compute(10, 3);
    auto node = make_node();
    for (Phase p = 0; p < params.phases; ++p) {
        (void)node.round_send(2 * p);
        node.round_receive(2 * p, FakeView(10, 0));
        (void)node.round_send(2 * p + 1);
        node.round_receive(2 * p + 1, FakeView(10, 0));
    }
    EXPECT_TRUE(node.halted());
}

TEST(SkeletonContracts, RejectsBadConfig) {
    const auto params = AgreementParams::compute(10, 3);
    EXPECT_THROW(Algorithm3Node(params, AgreementMode::WhpFixedPhases, 10, 0,
                                Xoshiro256(1)),
                 ContractViolation);  // self out of range
    EXPECT_THROW(Algorithm3Node(params, AgreementMode::WhpFixedPhases, 0, 2,
                                Xoshiro256(1)),
                 ContractViolation);  // non-binary input
}

TEST(SkeletonCommitteeFlip, MembersFlipNonMembersDoNot) {
    const auto params = AgreementParams::compute(12, 3);
    const NodeId s = params.schedule.block;
    // Member of committee 0:
    Algorithm3Node member(params, AgreementMode::WhpFixedPhases, 0, 0, Xoshiro256(7));
    (void)member.round_send(0);
    const auto m = member.round_send(1);
    ASSERT_TRUE(m.has_value());
    EXPECT_NE(m->coin, 0);
    // Non-member (last node, committee != 0 when s < n):
    ASSERT_LT(s, 12u);
    Algorithm3Node outsider(params, AgreementMode::WhpFixedPhases, 11, 0, Xoshiro256(8));
    (void)outsider.round_send(0);
    const auto o = outsider.round_send(1);
    ASSERT_TRUE(o.has_value());
    EXPECT_EQ(o->coin, 0);
}

}  // namespace
}  // namespace adba::core
