// Batch-plane tests: native SoA protocol stepping (registry make_batch)
// must be BIT-IDENTICAL to the per-node adapter path (scenario batch=false)
// for every compatible (protocol, adversary) registry pair, at any thread
// count, on both the flat delivery plane and the reference oracle — plus a
// randomized fuzz sweep over sampled pairs, seeds, and network sizes.
#include <gtest/gtest.h>

#include <vector>

#include "net/batch.hpp"
#include "net/engine.hpp"
#include "rand/rng.hpp"
#include "sim/registry.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

void expect_samples_eq(const Samples& a, const Samples& b, const char* what) {
    ASSERT_EQ(a.count(), b.count()) << what;
    const auto& xs = a.values();
    const auto& ys = b.values();
    for (std::size_t i = 0; i < xs.size(); ++i)
        ASSERT_EQ(xs[i], ys[i]) << what << " sample " << i;
}

void expect_aggregate_eq(const sim::Aggregate& a, const sim::Aggregate& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.agreement_failures, b.agreement_failures);
    EXPECT_EQ(a.validity_failures, b.validity_failures);
    EXPECT_EQ(a.not_halted, b.not_halted);
    expect_samples_eq(a.rounds, b.rounds, "rounds");
    expect_samples_eq(a.messages, b.messages, "messages");
    expect_samples_eq(a.bits, b.bits, "bits");
    expect_samples_eq(a.corruptions, b.corruptions, "corruptions");
}

/// Largest t the protocol's resilience predicate admits at n (0 if none).
Count max_t(const sim::ProtocolEntry& p, NodeId n) {
    Count t = (n - 1) / 3;
    while (t > 0 && !p.supports(n, t)) --t;
    return t;
}

// ---------------------------------------------------------------------------
// Every compatible registry pair with a native batch: batch == per-node,
// bit for bit, on the flat plane (threads 1 and 8) and on the reference
// delivery oracle.

TEST(BatchPlaneEquivalence, AllRegistryPairsBatchMatchesPerNode) {
    const NodeId n = 25;
    Count covered = 0;
    for (const sim::ProtocolEntry* p : sim::ProtocolRegistry::instance().list()) {
        if (p->make_batch == nullptr) continue;  // adapter-only protocol
        for (const sim::AdversaryEntry* a : sim::AdversaryRegistry::instance().list()) {
            sim::Scenario s;
            s.protocol = p->kind;
            s.adversary = a->kind;
            s.n = n;
            s.t = max_t(*p, n);
            s.inputs = sim::InputPattern::Split;
            s.local_coin_phases = 12;  // keep the private-coin runs bounded
            if (!sim::compatible(s)) continue;
            ++covered;
            SCOPED_TRACE(p->name + " vs " + a->name);

            const sim::ExecutorConfig serial{1, 0};
            sim::Scenario batched = s;
            batched.use_batch = true;
            sim::Scenario per_node = s;
            per_node.use_batch = false;

            const sim::Aggregate fast = sim::run_trials(batched, 0xBA7C4, 6, serial);
            const sim::Aggregate ref = sim::run_trials(per_node, 0xBA7C4, 6, serial);
            expect_aggregate_eq(fast, ref);

            // Thread-count invariance of the batch path (arena re-arming of
            // the pooled batch must be exact across any chunking).
            const sim::Aggregate par = sim::run_trials(batched, 0xBA7C4, 6, {8, 2});
            expect_aggregate_eq(fast, par);

            // Reference-delivery oracle: the batch's scalar per-view receive
            // must match the per-node nodes driven over the same oracle.
            sim::Scenario batched_ref = batched;
            batched_ref.reference_delivery = true;
            sim::Scenario per_node_ref = per_node;
            per_node_ref.reference_delivery = true;
            expect_aggregate_eq(sim::run_trials(batched_ref, 0xBA7C4, 3, serial),
                                sim::run_trials(per_node_ref, 0xBA7C4, 3, serial));
        }
    }
    // 8 native-batch protocols x 9 adversaries minus constraints.
    EXPECT_GE(covered, 45u) << "batch registry coverage unexpectedly low";
}

// ---------------------------------------------------------------------------
// Randomized fuzz: sampled (protocol, adversary, inputs, n, seed) tuples,
// one-shot trials, full result comparison.

TEST(BatchPlaneEquivalence, FuzzRandomizedScenariosMatchBitIdentically) {
    const NodeId sizes[] = {4, 7, 33, 128};
    const sim::InputPattern patterns[] = {
        sim::InputPattern::AllZero, sim::InputPattern::AllOne,
        sim::InputPattern::Split, sim::InputPattern::Random};
    const auto protocols = sim::ProtocolRegistry::instance().list();
    const auto adversaries = sim::AdversaryRegistry::instance().list();

    Xoshiro256 rng(0xF022);
    Count checked = 0;
    for (int iter = 0; iter < 200 && checked < 48; ++iter) {
        const auto* p = protocols[rng.below(protocols.size())];
        if (p->make_batch == nullptr) continue;
        const auto* a = adversaries[rng.below(adversaries.size())];
        sim::Scenario s;
        s.protocol = p->kind;
        s.adversary = a->kind;
        s.n = sizes[rng.below(4)];
        s.t = max_t(*p, s.n);
        if (s.t > 0 && rng.bernoulli(0.3)) s.q = static_cast<Count>(rng.below(s.t + 1));
        s.inputs = patterns[rng.below(4)];
        s.local_coin_phases = 10;
        if (!sim::compatible(s)) continue;
        ++checked;
        const std::uint64_t seed = rng();
        SCOPED_TRACE(p->name + " vs " + a->name + " n=" + std::to_string(s.n) +
                     " seed=" + std::to_string(seed));

        sim::Scenario per_node = s;
        per_node.use_batch = false;
        const sim::TrialResult fast = sim::run_trial(s, seed);
        const sim::TrialResult ref = sim::run_trial(per_node, seed);

        EXPECT_EQ(fast.agreement, ref.agreement);
        EXPECT_EQ(fast.agreed_value, ref.agreed_value);
        EXPECT_EQ(fast.validity_applicable, ref.validity_applicable);
        EXPECT_EQ(fast.validity_ok, ref.validity_ok);
        EXPECT_EQ(fast.all_halted, ref.all_halted);
        EXPECT_EQ(fast.rounds, ref.rounds);
        EXPECT_EQ(fast.phases_configured, ref.phases_configured);
        EXPECT_EQ(fast.metrics.honest_messages, ref.metrics.honest_messages);
        EXPECT_EQ(fast.metrics.honest_bits, ref.metrics.honest_bits);
        EXPECT_EQ(fast.metrics.byzantine_messages, ref.metrics.byzantine_messages);
        EXPECT_EQ(fast.metrics.corruptions, ref.metrics.corruptions);
        EXPECT_EQ(fast.metrics.rounds, ref.metrics.rounds);
    }
    EXPECT_GE(checked, 32u) << "fuzz sweep sampled too few compatible scenarios";
}

// ---------------------------------------------------------------------------
// Registry + scenario plumbing.

TEST(BatchPlaneRegistry, HotProtocolsShipNativeBatches) {
    const auto& reg = sim::ProtocolRegistry::instance();
    for (const char* name : {"ours", "ours-las-vegas", "chor-coan-rushing",
                             "chor-coan-classic", "rabin-dealer", "local-coin",
                             "ben-or", "phase-king"}) {
        const sim::ProtocolEntry& e = reg.at(std::string(name));
        EXPECT_TRUE(e.make_batch != nullptr) << name;
        EXPECT_TRUE(e.reinit_batch != nullptr) << name;
    }
}

TEST(BatchPlaneRegistry, ScenarioBatchKeyRoundTrips) {
    sim::Scenario s;
    s.n = 16;
    s.t = 5;
    s.use_batch = false;
    const sim::Scenario parsed = sim::Scenario::parse(s.describe());
    EXPECT_EQ(parsed, s);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5").use_batch);
    EXPECT_FALSE(sim::Scenario::parse("n=16 t=5 batch=off").use_batch);
    EXPECT_TRUE(sim::Scenario::parse("n=16 t=5 batch=on").use_batch);
}

// ---------------------------------------------------------------------------
// Engine-level batch pooling: take_batch + reset must reproduce fresh runs
// (this is what the Monte-Carlo arena does per trial).

TEST(BatchPlanePooling, ArenaReuseMatchesFreshTrials) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.n = 28;
    s.t = 9;
    s.inputs = sim::InputPattern::Random;

    const Count trials = 10;
    const sim::Aggregate pooled = sim::run_trials(s, 0xBEEF, trials, {1, 0});
    ASSERT_EQ(pooled.rounds.count(), trials);
    for (Count i = 0; i < trials; ++i) {
        const sim::TrialResult fresh =
            sim::run_trial(s, mix64(0xBEEF + 0x100000001b3ULL * i));
        EXPECT_EQ(pooled.rounds.values()[i], static_cast<double>(fresh.rounds)) << i;
        EXPECT_EQ(pooled.messages.values()[i],
                  static_cast<double>(fresh.metrics.honest_messages))
            << i;
        EXPECT_EQ(pooled.corruptions.values()[i],
                  static_cast<double>(fresh.metrics.corruptions))
            << i;
    }
}

TEST(BatchPlanePooling, TakeNodesRequiresPerNodeForm) {
    sim::Scenario s;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::Static;
    s.n = 10;
    s.t = 3;
    const sim::ScenarioPlan plan = sim::validate(s);
    const SeedTree seeds(7);
    std::vector<Bit> inputs(s.n, 0);
    sim::ProtocolBundle bundle = plan.protocol->make_batch(s, inputs, seeds);
    ASSERT_TRUE(bundle.batch != nullptr);
    EXPECT_TRUE(bundle.nodes.empty());
    auto adversary = plan.adversary->make_adversary(s, bundle, seeds);
    net::Engine eng({s.n, s.t, bundle.default_max_rounds, false},
                    std::move(bundle.batch), *adversary);
    EXPECT_THROW(eng.take_nodes(), ContractViolation);
    (void)eng.run();
    EXPECT_TRUE(eng.take_batch() != nullptr);
}

}  // namespace
}  // namespace adba
