// Fine-grained Turpin-Coan unit tests with crafted delivery views (the
// sweep/fuzz coverage is end-to-end; these pin the byte-level rules).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "analysis/bootstrap.hpp"
#include "analysis/related_work.hpp"
#include "core/multivalued.hpp"
#include "support/contracts.hpp"

namespace adba::core {
namespace {

/// Scriptable delivery source; converts implicitly to a ReceiveView over
/// the virtual adapter backend (see net/round_buffer.hpp).
class FakeView final : public net::DeliverySource {
public:
    FakeView(NodeId n, NodeId recv) : n_(n), recv_(recv), slots_(n) {}
    void put(NodeId from, net::Message m) { slots_[from] = m; }
    const net::Message* delivery(NodeId, NodeId sender) const override {
        return slots_[sender] ? &*slots_[sender] : nullptr;
    }
    NodeId n() const override { return n_; }

    operator net::ReceiveView() const { return net::ReceiveView(*this, recv_); }

private:
    NodeId n_;
    NodeId recv_;
    std::vector<std::optional<net::Message>> slots_;
};

net::Message tc_value(net::Word w) {
    net::Message m;
    m.kind = net::MsgKind::TCValue;
    m.word = w;
    return m;
}

net::Message tc_echo(net::Word w, bool real = true) {
    net::Message m;
    m.kind = net::MsgKind::TCEcho;
    m.flag = real ? 1 : 0;
    m.word = w;
    return m;
}

// n=10, t=3: quorum 7.
TurpinCoanNode make_node(net::Word input, net::Word fallback = 0xD0) {
    const auto params = MultiValuedParams::compute(10, 3, Tuning{}, fallback);
    return TurpinCoanNode(params, 0, input, Xoshiro256(5));
}

TEST(TurpinCoanUnit, Round0QuorumSetsEcho) {
    auto node = make_node(1);
    (void)node.round_send(0);
    FakeView v(10, 0);
    for (NodeId u = 0; u < 7; ++u) v.put(u, tc_value(0x77));
    node.round_receive(0, v);
    const auto echo = node.round_send(1);
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->kind, net::MsgKind::TCEcho);
    EXPECT_EQ(echo->flag, 1);
    EXPECT_EQ(echo->word, 0x77u);
}

TEST(TurpinCoanUnit, Round0BelowQuorumEchoesBottom) {
    auto node = make_node(1);
    (void)node.round_send(0);
    FakeView v(10, 0);
    for (NodeId u = 0; u < 6; ++u) v.put(u, tc_value(0x77));  // 6 < 7
    for (NodeId u = 6; u < 10; ++u) v.put(u, tc_value(0x88));
    node.round_receive(0, v);
    const auto echo = node.round_send(1);
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->flag, 0) << "no quorum -> ⊥ echo";
}

TEST(TurpinCoanUnit, Round1QuorumOfEchoesGivesBinaryOne) {
    auto node = make_node(1);
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView v(10, 0);
    for (NodeId u = 0; u < 7; ++u) v.put(u, tc_echo(0x42));
    node.round_receive(1, v);
    // Inner protocol constructed with input 1: observable via round 2 send.
    const auto m = node.round_send(2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->kind, net::MsgKind::Vote1);
    EXPECT_EQ(m->val, 1);
}

TEST(TurpinCoanUnit, Round1FewEchoesGiveBinaryZeroButTrackXStar) {
    auto node = make_node(1);
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView v(10, 0);
    for (NodeId u = 0; u < 3; ++u) v.put(u, tc_echo(0x42));
    node.round_receive(1, v);
    const auto m = node.round_send(2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->val, 0);
}

TEST(TurpinCoanUnit, BottomEchoesDoNotCount) {
    auto node = make_node(1);
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView v(10, 0);
    for (NodeId u = 0; u < 9; ++u) v.put(u, tc_echo(0x42, /*real=*/false));
    node.round_receive(1, v);
    const auto m = node.round_send(2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->val, 0) << "⊥ echoes must not reach the quorum";
}

TEST(TurpinCoanUnit, TieBreaksToSmallestWord) {
    auto node = make_node(1);
    (void)node.round_send(0);
    node.round_receive(0, FakeView(10, 0));
    (void)node.round_send(1);
    FakeView v(10, 0);
    for (NodeId u = 0; u < 3; ++u) v.put(u, tc_echo(0xBB));
    for (NodeId u = 3; u < 6; ++u) v.put(u, tc_echo(0xAA));
    node.round_receive(1, v);
    // 3-3 tie: x* must deterministically pick 0xAA (smallest) at every node.
    // Observable only through output_word after a binary-1 run; assert via
    // internal contract instead: construct quorum case for 0xAA ties.
    SUCCEED();  // tie determinism is enforced by map iteration order (tested
                // end-to-end by MultiValued sweeps; this documents the rule)
}

TEST(TurpinCoanUnit, FallbackWordWhenBinaryZero) {
    // Full engine-free mini-run is impractical here; the fallback path is
    // covered end-to-end in test_extensions (FragmentedInputsFallBack...).
    // Here: the constructor honours the fallback parameter.
    const auto params = MultiValuedParams::compute(10, 3, Tuning{}, 0x1234);
    EXPECT_EQ(params.fallback, 0x1234u);
    EXPECT_EQ(params.binary.n, 10u);
}

TEST(TurpinCoanUnit, MaxRoundsAddsPrelude) {
    const auto params = MultiValuedParams::compute(10, 3);
    EXPECT_EQ(max_rounds_whp(params), 2 + max_rounds_whp(params.binary));
}

}  // namespace
}  // namespace adba::core

// --------------------------------------------------------------- analysis

namespace adba::an {
namespace {

TEST(RelatedWork, TableCoversThePaperNarrative) {
    const auto& rows = related_work();
    ASSERT_GE(rows.size(), 8u);
    EXPECT_EQ(rows.back().name, "THIS PAPER (Algorithm 3)");
    int implemented = 0;
    for (const auto& r : rows) implemented += r.implemented_here ? 1 : 0;
    EXPECT_GE(implemented, 6) << "most cited systems must be reproduced here";
    const auto table = related_work_table();
    EXPECT_EQ(table.rows(), rows.size());
    EXPECT_NE(table.to_markdown().find("Chor-Coan"), std::string::npos);
}

TEST(Bootstrap, CiCoversTheMeanAndShrinksWithN) {
    std::vector<double> small, big;
    Xoshiro256 rng(3);
    for (int i = 0; i < 20; ++i) small.push_back(10.0 + rng.uniform01());
    for (int i = 0; i < 2000; ++i) big.push_back(10.0 + rng.uniform01());
    const auto ci_small = bootstrap_mean_ci(small);
    const auto ci_big = bootstrap_mean_ci(big);
    EXPECT_LE(ci_small.lo, ci_small.point);
    EXPECT_GE(ci_small.hi, ci_small.point);
    EXPECT_LT(ci_big.hi - ci_big.lo, ci_small.hi - ci_small.lo);
    EXPECT_NEAR(ci_big.point, 10.5, 0.05);
}

TEST(Bootstrap, DeterministicForSeed) {
    std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto a = bootstrap_mean_ci(xs, 0.05, 500, 9);
    const auto b = bootstrap_mean_ci(xs, 0.05, 500, 9);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, DiffCiSeparatesDistinctMeans) {
    std::vector<double> a, b;
    Xoshiro256 rng(7);
    for (int i = 0; i < 60; ++i) {
        a.push_back(20.0 + rng.uniform01());
        b.push_back(10.0 + rng.uniform01());
    }
    const auto ci = bootstrap_mean_diff_ci(a, b);
    EXPECT_GT(ci.lo, 0.0) << "difference of ~10 must be significant";
    EXPECT_NEAR(ci.point, 10.0, 0.3);
}

TEST(Bootstrap, ContractChecks) {
    EXPECT_THROW(bootstrap_mean_ci({}), ContractViolation);
    EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5), ContractViolation);
    EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.05, 3), ContractViolation);
}

}  // namespace
}  // namespace adba::an
