// Edge-case and cross-cutting coverage that the module suites don't reach:
// macro simulator's alternative schedules, coin-runner determinism, engine
// halting interplay, Las Vegas committee cycling, and wire-format corners.
#include <gtest/gtest.h>

#include <set>

#include "baselines/chor_coan.hpp"
#include "core/agreement.hpp"
#include "net/engine.hpp"
#include "sim/coin_runner.hpp"
#include "sim/macro.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace adba {
namespace {

TEST(MacroExtras, ClassicScheduleRuns) {
    sim::MacroScenario m;
    m.n = 1 << 14;
    m.t = 800;
    m.q = 800;
    m.schedule = sim::MacroScheduleKind::ChorCoanClassic;
    const auto r = sim::run_macro_trial(m, 11);
    EXPECT_GT(r.rounds, 0u);
    EXPECT_LE(r.corruptions, m.q);
    // Classic groups are log-sized regardless of t.
    EXPECT_EQ(r.committee_size, ceil_log2(m.n));
}

TEST(MacroExtras, RushingVsClassicRuinEconomics) {
    // At large n and moderate t the classic schedule's small groups are
    // cheaper to ruin per phase, so the SAME budget ruins more phases =>
    // more rounds (this is the historic protocol's rushing weakness).
    sim::MacroScenario m;
    m.n = 1 << 16;
    m.t = 2000;
    m.q = 2000;
    double classic = 0, rushing = 0;
    for (int i = 0; i < 10; ++i) {
        m.schedule = sim::MacroScheduleKind::ChorCoanClassic;
        classic += static_cast<double>(
            sim::run_macro_trial(m, 200 + static_cast<std::uint64_t>(i)).rounds);
        m.schedule = sim::MacroScheduleKind::ChorCoanRushing;
        rushing += static_cast<double>(
            sim::run_macro_trial(m, 200 + static_cast<std::uint64_t>(i)).rounds);
    }
    EXPECT_GT(classic, rushing);
}

TEST(MacroExtras, BudgetExhaustionReportsFailureHonestly) {
    // Force the w.h.p. failure path: tiny alpha so the adversary can ruin
    // every phase.
    sim::MacroScenario m;
    m.n = 256;
    m.t = 85;
    m.q = 85;
    m.tuning.alpha = 0.0 + 1.0;
    m.tuning.gamma = 0.1;  // near-zero floor
    int failures = 0;
    for (int i = 0; i < 20; ++i) {
        const auto r = sim::run_macro_trial(m, 300 + static_cast<std::uint64_t>(i));
        if (!r.agreement) ++failures;
    }
    EXPECT_GT(failures, 0) << "alpha=1 with no floor must fail sometimes";
}

TEST(CoinRunnerExtras, DeterministicPerSeed) {
    const sim::CoinScenario s{128, 128, 5, adv::CoinAttack::Split, 0};
    const auto a = sim::run_coin_trial(s, 77);
    const auto b = sim::run_coin_trial(s, 77);
    EXPECT_EQ(a.common, b.common);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.attack_feasible, b.attack_feasible);
}

TEST(CoinRunnerExtras, ForceBitPushesConditionalValue) {
    const NodeId n = 256;
    const auto f1 =
        sim::run_coin_trials({n, n, 8, adv::CoinAttack::ForceBit, 1}, 5, 800);
    const auto f0 =
        sim::run_coin_trials({n, n, 8, adv::CoinAttack::ForceBit, 0}, 5, 800);
    EXPECT_GT(f1.p_one_given_common(), 0.6);
    EXPECT_LT(f0.p_one_given_common(), 0.4);
}

TEST(LasVegasExtras, CommitteesCycleBeyondFirstPass) {
    // With a tiny corruption budget the Las Vegas run ends quickly, but the
    // schedule arithmetic must cycle: phase p maps to committee p mod k.
    const auto params = core::AgreementParams::compute(32, 10);
    const auto& sched = params.schedule;
    const Count k = sched.num_blocks;
    for (Phase p = 0; p < 3 * k; ++p)
        EXPECT_EQ(sched.committee_of_phase(p), p % k);
}

TEST(EngineExtras, HaltedNodesStopReceivingButOthersContinue) {
    // Run ours at t=0: all halt simultaneously after the finish flush; the
    // engine must report all_halted and stop early (before max_rounds).
    sim::Scenario s;
    s.n = 32;
    s.t = 0;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::None;
    s.inputs = sim::InputPattern::Split;
    s.max_rounds_override = 100;
    const auto r = sim::run_trial(s, 3);
    EXPECT_TRUE(r.all_halted);
    EXPECT_LT(r.rounds, 100u);
}

TEST(EngineExtras, MaxRoundsOverrideRespected) {
    sim::Scenario s;
    s.n = 32;
    s.t = 10;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    s.max_rounds_override = 4;  // far below the protocol's own budget
    const auto r = sim::run_trial(s, 3);
    EXPECT_LE(r.rounds, 4u);
}

TEST(WireFormat, MessageEqualityIsFieldwise) {
    net::Message a, b;
    a.kind = b.kind = net::MsgKind::Vote2;
    a.val = b.val = 1;
    a.coin = 1;
    b.coin = -1;
    EXPECT_NE(a, b);
    b.coin = 1;
    EXPECT_EQ(a, b);
    b.word = 5;
    EXPECT_NE(a, b);
}

TEST(ChorCoanExtras, RushingCommitteesShrinkWithT) {
    // More faults -> more committees -> smaller committees.
    const NodeId n = 512;
    NodeId prev = n;
    for (Count t : {8u, 32u, 128u, 170u}) {
        const auto p = base::ChorCoanParams::compute_rushing(n, t);
        EXPECT_LE(p.schedule.block, prev) << t;
        prev = p.schedule.block;
    }
}

TEST(ChorCoanExtras, MaxRoundsCoversFlush) {
    const auto p = base::ChorCoanParams::compute_rushing(128, 40);
    EXPECT_GE(base::max_rounds_whp(p), 2 * p.phases + 2);
}

TEST(AggregateExtras, QuantileColumnsAreOrdered) {
    sim::Scenario s;
    s.n = 64;
    s.t = 21;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    const auto agg = sim::run_trials(s, 0xAB, 20);
    EXPECT_LE(agg.rounds.quantile(0.1), agg.rounds.quantile(0.5));
    EXPECT_LE(agg.rounds.quantile(0.5), agg.rounds.quantile(0.9));
    EXPECT_LE(agg.rounds.quantile(0.9), agg.rounds.max());
    EXPECT_GE(agg.rounds.quantile(0.1), agg.rounds.min());
}

TEST(SeedSensitivity, InputsDriveTheTrajectory) {
    // Unanimous inputs lock immediately; split inputs force coin phases —
    // the protocol must actually be reading its inputs. (Split vs Random at
    // balanced proportions genuinely coincide in LENGTH under the worst-case
    // adversary — the trajectory is coin-driven once no bloc has a quorum —
    // so the meaningful contrast is unanimous vs split.)
    sim::Scenario a;
    a.n = 64;
    a.t = 21;
    a.protocol = sim::ProtocolKind::Ours;
    a.adversary = sim::AdversaryKind::WorstCase;
    a.inputs = sim::InputPattern::AllOne;
    sim::Scenario b = a;
    b.inputs = sim::InputPattern::Split;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto ra = sim::run_trial(a, seed);
        const auto rb = sim::run_trial(b, seed);
        EXPECT_LT(ra.rounds, rb.rounds) << seed;
        EXPECT_EQ(*ra.agreed_value, 1) << "validity fixes the unanimous outcome";
    }
}

}  // namespace
}  // namespace adba
