// Unit tests of adversary strategy mechanics (corruption timing, budget
// discipline, equivocation patterns) against scripted protocol stubs.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/chaos.hpp"
#include "adversary/coin_ruin.hpp"
#include "adversary/crash.hpp"
#include "adversary/split_vote.hpp"
#include "adversary/static_adversary.hpp"
#include "adversary/worst_case.hpp"
#include "core/agreement.hpp"
#include "core/params.hpp"
#include "net/engine.hpp"
#include "rand/rng.hpp"
#include "rand/seed_tree.hpp"
#include "support/contracts.hpp"

namespace adba::adv {
namespace {

/// Stub node broadcasting a fixed Vote1/Vote2 cadence with a fixed coin.
class StubVoter final : public net::HonestNode {
public:
    StubVoter(NodeId self, Bit val, CoinSign coin, NodeId committee_end)
        : self_(self), val_(val), coin_(coin), committee_end_(committee_end) {}

    std::optional<net::Message> round_send(Round r) override {
        net::Message m;
        m.phase = r / 2;
        m.val = val_;
        m.flag = 0;
        if (r % 2 == 0) {
            m.kind = net::MsgKind::Vote1;
        } else {
            m.kind = net::MsgKind::Vote2;
            m.coin = self_ < committee_end_ ? coin_ : CoinSign{0};
        }
        return m;
    }
    void round_receive(Round, const net::ReceiveView& view) override {
        last_inbox_.assign(view.n(), std::nullopt);
        for (NodeId u = 0; u < view.n(); ++u) {
            const auto* m = view.from(u);
            if (m) last_inbox_[u] = *m;
        }
    }
    bool halted() const override { return false; }
    Bit current_value() const override { return val_; }

    std::vector<std::optional<net::Message>> last_inbox_;

private:
    NodeId self_;
    Bit val_;
    CoinSign coin_;
    NodeId committee_end_;
};

std::vector<std::unique_ptr<net::HonestNode>> stub_network(
    NodeId n, NodeId committee_end, CoinSign coin,
    std::vector<StubVoter*>* raw = nullptr) {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    for (NodeId v = 0; v < n; ++v) {
        auto p = std::make_unique<StubVoter>(v, static_cast<Bit>(v & 1), coin,
                                             committee_end);
        if (raw) raw->push_back(p.get());
        nodes.push_back(std::move(p));
    }
    return nodes;
}

TEST(StaticAdversary, CorruptsExactlyQAtRoundZero) {
    StaticAdversary adv(3, StaticBehavior::Silent, Xoshiro256(1));
    net::Engine eng({10, 3, 2, false}, stub_network(10, 0, 0), adv);
    const auto res = eng.run();
    EXPECT_EQ(res.metrics.corruptions, 3u);
    EXPECT_EQ(adv.corrupted().size(), 3u);
    EXPECT_EQ(res.honest_count(), 7u);
}

TEST(StaticAdversary, SilentModeSendsNothing) {
    StaticAdversary adv(2, StaticBehavior::Silent, Xoshiro256(2));
    net::Engine eng({8, 2, 1, false}, stub_network(8, 0, 0), adv);
    const auto res = eng.run();
    EXPECT_EQ(res.metrics.byzantine_messages, 0u);
}

TEST(StaticAdversary, SplitVotesEquivocatesByReceiverHalf) {
    std::vector<StubVoter*> raw;
    StaticAdversary adv(1, StaticBehavior::SplitVotes, Xoshiro256(3));
    net::Engine eng({8, 1, 1, false}, stub_network(8, 0, 0, &raw), adv);
    eng.run();
    const NodeId byz = adv.corrupted()[0];
    // Survivors in the low half saw val 0, high half saw val 1.
    for (NodeId v = 0; v < 8; ++v) {
        if (v == byz) continue;
        ASSERT_TRUE(raw[v]->last_inbox_[byz].has_value());
        EXPECT_EQ(raw[v]->last_inbox_[byz]->val, v < 4 ? 0 : 1);
    }
}

TEST(StaticAdversary, RejectsOverBudget) {
    StaticAdversary adv(5, StaticBehavior::Silent, Xoshiro256(4));
    EXPECT_THROW(adv.on_start(10, 4), ContractViolation);
}

TEST(Chaos, RespectsSelfCap) {
    ChaosAdversary adv({2, 1.0, 0.5}, Xoshiro256(5));  // corrupt every round
    net::Engine eng({10, 9, 20, false}, stub_network(10, 0, 0), adv);
    const auto res = eng.run();
    EXPECT_LE(res.metrics.corruptions, 2u);
}

TEST(Chaos, DeliversGarbageWithoutCrashingReceivers) {
    ChaosAdversary adv({3, 1.0, 1.0}, Xoshiro256(6));
    net::Engine eng({10, 3, 10, false}, stub_network(10, 5, 1), adv);
    const auto res = eng.run();
    EXPECT_GT(res.metrics.byzantine_messages, 0u);
}

TEST(CrashRandom, CrashedNodesStaySilentForever) {
    CrashAdversary adv({3, CrashMode::Random, 1.0, std::nullopt}, Xoshiro256(7));
    std::vector<StubVoter*> raw;
    net::Engine eng({8, 3, 6, false}, stub_network(8, 0, 0, &raw), adv);
    const auto res = eng.run();
    EXPECT_EQ(adv.crashes_used(), 3u);
    // After the final round, every corrupted node's slot in every survivor's
    // inbox is empty (crash adversaries never speak again).
    for (NodeId v = 0; v < 8; ++v) {
        if (!res.honest[v]) continue;
        for (NodeId u = 0; u < 8; ++u) {
            if (res.honest[u]) continue;
            EXPECT_FALSE(raw[v]->last_inbox_[u].has_value());
        }
    }
}

/// Stub network where committee member `neg_member` flips -1 and the other
/// members flip +1.
std::vector<std::unique_ptr<net::HonestNode>> mixed_committee_network(
    NodeId n, NodeId committee_end, NodeId neg_member,
    std::vector<StubVoter*>* raw = nullptr) {
    std::vector<std::unique_ptr<net::HonestNode>> nodes;
    for (NodeId v = 0; v < n; ++v) {
        const CoinSign c = v == neg_member ? CoinSign{-1} : CoinSign{1};
        auto p = std::make_unique<StubVoter>(v, static_cast<Bit>(v & 1), c,
                                             committee_end);
        if (raw) raw->push_back(p.get());
        nodes.push_back(std::move(p));
    }
    return nodes;
}

TEST(CrashTargeted, SplitsCoinWithPrefixDelivery) {
    // Committee {0,1,2,3} flips (+1,+1,+1,-1): S = 2, so the split needs
    // S+1 = 3 crashes of +1 flippers, the last partial. Survivor set {-1}
    // sums to -1; prefix receivers also get the partial +1 and see 0
    // (coin 1), the rest see -1 (coin 0).
    const auto sched = core::BlockSchedule::make(12, 4);
    {
        CrashAdversary adv({3, CrashMode::TargetedCoin, 0.0, sched}, Xoshiro256(8));
        std::vector<StubVoter*> raw;
        net::Engine eng({12, 3, 2, false}, mixed_committee_network(12, 4, 3, &raw),
                        adv);
        const auto res = eng.run();
        EXPECT_EQ(adv.crashes_used(), 3u);
        int ones = 0, zeros = 0;
        for (NodeId v = 0; v < 12; ++v) {
            if (!res.honest[v]) continue;
            std::int64_t sum = 0;
            for (NodeId u = 0; u < 4; ++u) {
                const auto& m = raw[v]->last_inbox_[u];
                if (m && m->coin != 0) sum += m->coin > 0 ? 1 : -1;
            }
            (sum >= 0 ? ones : zeros) += 1;
        }
        EXPECT_GT(ones, 0);
        EXPECT_GT(zeros, 0);
    }
    {
        // Budget one short of the needed 3: spend nothing.
        CrashAdversary adv({2, CrashMode::TargetedCoin, 0.0, sched}, Xoshiro256(8));
        net::Engine eng({12, 2, 2, false}, mixed_committee_network(12, 4, 3, nullptr),
                        adv);
        eng.run();
        EXPECT_EQ(adv.crashes_used(), 0u) << "unaffordable phase: spend nothing";
    }
    {
        // Unanimous +1 committee: needs S+1 = 5 crashes but only 4 flippers
        // exist — crash-immune (ties break to 1); spend nothing.
        CrashAdversary adv({12, CrashMode::TargetedCoin, 0.0, sched}, Xoshiro256(8));
        net::Engine eng({12, 12 - 1, 2, false}, stub_network(12, 4, +1, nullptr), adv);
        eng.run();
        EXPECT_EQ(adv.crashes_used(), 0u) << "crash-immune committee: spend nothing";
    }
}

TEST(CoinRuin, NeedsNoCorruptionsWhenSumIsTiny) {
    // If the honest flips land nearly balanced, the attack can be free; we
    // only assert the adversary never exceeds its budget and the feasibility
    // flag matches the outcome (checked statistically in test_coin).
    CoinRuinAdversary adv({16, 3, CoinAttack::Split, 0});
    // Engine integration happens in coin tests; here: construction sanity.
    EXPECT_FALSE(adv.attack_feasible());
}

TEST(WorstCase, SpendsNothingAgainstUnanimousInputs) {
    // All inputs equal (real Algorithm 3 nodes): the n-t vote quorum is
    // unblockable (blocking costs t+1 > budget) and every honest node
    // decides in round 1, so the decided-reduction cost d - t = n - 2t also
    // exceeds the budget. The adversary must give up without wasting a
    // single corruption and the run locks in immediately.
    const auto params = core::AgreementParams::compute(16, 5);
    const SeedTree seeds(123);
    const std::vector<Bit> inputs(16, 1);
    auto nodes = core::make_algorithm3_nodes(
        params, core::AgreementMode::WhpFixedPhases, inputs, seeds);
    WorstCaseAdversary adv({5, 5, params.schedule, true});
    net::Engine eng({16, 5, core::max_rounds_whp(params), false}, std::move(nodes),
                    adv);
    const auto res = eng.run();
    EXPECT_EQ(res.metrics.corruptions, 0u);
    EXPECT_EQ(adv.corruptions_used(), 0u);
    EXPECT_TRUE(res.agreement());
    EXPECT_EQ(*res.agreed_value(), 1);
    EXPECT_LE(res.rounds, 6u);
}

TEST(WorstCase, RuinsUnanimousCoinWhenAffordable) {
    // Stub committee all flips +1 and votes split: the adversary must
    // corrupt ~half the committee to split the coin.
    const auto sched = core::BlockSchedule::make(16, 8);
    WorstCaseAdversary adv({5, 5, sched, true});
    std::vector<StubVoter*> raw;
    net::Engine eng({16, 5, 2, false}, stub_network(16, 8, +1, &raw), adv);
    eng.run();
    // Sum 8, need S' <= M-1: k >= 4.5 -> 5 corruptions (m starts 0).
    EXPECT_EQ(adv.corruptions_used(), 5u);
    EXPECT_EQ(adv.phases_ruined(), 1u);
}

TEST(WorstCase, GivesUpWhenRuinUnaffordable) {
    const auto sched = core::BlockSchedule::make(16, 8);
    WorstCaseAdversary adv({4, 4, sched, true});  // needs 5, has 4
    net::Engine eng({16, 4, 2, false}, stub_network(16, 8, +1, nullptr), adv);
    const auto res = eng.run();
    EXPECT_EQ(res.metrics.corruptions, 0u);
    EXPECT_EQ(adv.phases_ruined(), 0u);
}

TEST(WorstCase, EquivocatedCoinsSplitReceivers) {
    // After a successful ruin, some honest receivers must compute a
    // different committee-coin sign than others.
    const auto sched = core::BlockSchedule::make(16, 8);
    WorstCaseAdversary adv({6, 6, sched, true});
    std::vector<StubVoter*> raw;
    net::Engine eng({16, 6, 2, false}, stub_network(16, 8, +1, &raw), adv);
    const auto res = eng.run();
    ASSERT_EQ(adv.phases_ruined(), 1u);
    int coin_one = 0, coin_zero = 0, survivors = 0;
    for (NodeId v = 0; v < 16; ++v) {
        if (!res.honest[v]) continue;
        ++survivors;
        std::int64_t sum = 0;
        for (NodeId u = 0; u < 8; ++u) {
            const auto& m = raw[v]->last_inbox_[u];
            if (m && m->kind == net::MsgKind::Vote2 && m->coin != 0)
                sum += m->coin > 0 ? 1 : -1;
        }
        (sum >= 0 ? coin_one : coin_zero) += 1;
    }
    EXPECT_GT(coin_one, 0);
    EXPECT_GT(coin_zero, 0);
    EXPECT_EQ(coin_one + coin_zero, survivors);
}

TEST(WorstCase, SelfCapsBelowEngineBudget) {
    const auto sched = core::BlockSchedule::make(16, 8);
    WorstCaseAdversary adv({6, 2, sched, true});  // q=2 < t=6
    net::Engine eng({16, 6, 4, false}, stub_network(16, 8, +1, nullptr), adv);
    const auto res = eng.run();
    EXPECT_LE(res.metrics.corruptions, 2u);
}

TEST(SplitVoteAdv, KeepsHalvesOnOppositeValues) {
    SplitVoteAdversary adv(2, Xoshiro256(11));
    std::vector<StubVoter*> raw;
    net::Engine eng({10, 2, 2, false}, stub_network(10, 0, 0, &raw), adv);
    const auto res = eng.run();
    EXPECT_EQ(res.metrics.corruptions, 2u);
    for (NodeId v = 0; v < 10; ++v) {
        if (!res.honest[v]) continue;
        for (NodeId u = 0; u < 10; ++u) {
            if (res.honest[u]) continue;
            ASSERT_TRUE(raw[v]->last_inbox_[u].has_value());
            EXPECT_EQ(raw[v]->last_inbox_[u]->val, v < 5 ? 0 : 1);
        }
    }
}

}  // namespace
}  // namespace adba::adv
