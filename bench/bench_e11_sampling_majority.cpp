// E11 — the sqrt(n) frontier of sampling-majority (paper §1.3, Augustine-
// Pandurangan-Robinson 2013): convergence survives Byzantine counts up to
// ~sqrt(n) and stalls beyond, the same anti-concentration economics as the
// paper's committee coin (drift per round ~ sqrt(n) = the price of one
// round of enforced balance for the adversary).
//
// Measured: final agreement rate and the first round of full honest
// agreement, as the balancer's budget sweeps through sqrt(n).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>

#include "adversary/balancer.hpp"
#include "baselines/sampling_majority.hpp"
#include "bench/common.hpp"
#include "net/engine.hpp"
#include "sim/inputs.hpp"
#include "sim/runner.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

// Per-cell aggregate for the custom (observer-instrumented) trial loop —
// runs on the executor via parallel_reduce like every standard runner.
struct E11Agg {
    Count trials = 0;
    Count agreements = 0;
    Samples first_agree;

    void merge(const E11Agg& other) {
        trials += other.trials;
        agreements += other.agreements;
        first_agree.merge(other.first_agree);
    }
};

E11Agg run_cell(NodeId n, Count t, Count trials) {
    return sim::parallel_reduce<E11Agg>(trials, {}, [&](Count begin, Count end) {
        E11Agg part;
        part.trials = end - begin;
        for (Count i = begin; i < end; ++i) {
            const SeedTree seeds(0xE11 + n * 1009ULL + t * 31ULL + i);
            const auto params = base::SamplingMajorityParams::compute(n, t, 4.0);
            auto nodes = base::make_sampling_majority_nodes(
                params, sim::make_inputs(sim::InputPattern::Split, n, seeds), seeds);
            adv::MajorityBalancerAdversary adversary({t, 0});
            net::Engine eng({n, t, params.rounds + 1, false}, std::move(nodes),
                            adversary);
            Round first = params.rounds;
            bool found = false;
            eng.set_round_observer([&](Round r, const auto& live, const auto& honest) {
                if (found) return;
                std::optional<Bit> v;
                for (NodeId u = 0; u < live.size(); ++u) {
                    if (!honest[u]) continue;
                    const Bit b = live[u]->current_value();
                    if (!v) {
                        v = b;
                    } else if (*v != b) {
                        return;
                    }
                }
                first = r;
                found = true;
            });
            const auto res = eng.run();
            if (res.agreement()) ++part.agreements;
            part.first_agree.add(static_cast<double>(first));
        }
        return part;
    });
}

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 15));
    std::printf("E11: sampling-majority vs the drift-cancelling balancer "
                "(%u trials/cell).\n", trials);

    Table tab("E11: convergence vs balancer budget (split inputs)");
    tab.set_header({"n", "t", "t/sqrt(n)", "agree %", "mean 1st-agree round",
                    "p90 1st-agree"});
    for (NodeId n : {256u, 1024u}) {
        const double sq = std::sqrt(static_cast<double>(n));
        for (double ratio : {0.0, 0.5, 1.0, 2.0, 4.0}) {
            auto t = static_cast<Count>(std::lround(ratio * sq));
            if (3 * t >= n) t = (n - 1) / 3;
            const E11Agg cell = run_cell(n, t, trials);
            tab.add_row({Table::num(std::uint64_t{n}), Table::num(std::uint64_t{t}),
                         Table::num(ratio, 1),
                         Table::num(100.0 * cell.agreements / cell.trials, 1),
                         Table::num(cell.first_agree.mean(), 1),
                         Table::num(cell.first_agree.quantile(0.9), 1)});
        }
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, tab, "e11_sampling_majority");
    std::printf(
        "Shape check vs paper §1.3: below the sqrt(n) scale the balancer only\n"
        "buys a handful of balanced rounds (its per-round bill is the Θ(sqrt n)\n"
        "drift), so convergence is barely delayed; well above sqrt(n) the first-\n"
        "agree round grows — the same frontier Theorem 3 defends with the\n"
        "Paley-Zygmund bound, appearing in a completely different protocol.\n");
}

void BM_sampling_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = 256;
    s.t = 16;
    s.protocol = sim::ProtocolKind::SamplingMajority;
    s.adversary = sim::AdversaryKind::Balancer;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_sampling_trial);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
