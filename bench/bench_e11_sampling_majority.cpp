// E11 — the sqrt(n) frontier of sampling-majority (paper §1.3, Augustine-
// Pandurangan-Robinson 2013): convergence survives Byzantine counts up to
// ~sqrt(n) and stalls beyond, the same anti-concentration economics as the
// paper's committee coin (drift per round ~ sqrt(n) = the price of one
// round of enforced balance for the adversary).
//
// Measured: final agreement rate and the first round of full honest
// agreement, as the balancer's budget sweeps through sqrt(n).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>

#include "adversary/balancer.hpp"
#include "baselines/sampling_majority.hpp"
#include "bench/common.hpp"
#include "net/engine.hpp"
#include "sim/inputs.hpp"
#include "sim/runner.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

struct E11Cell {
    double agree_rate = 0.0;
    double mean_first_agree = 0.0;
    double p90_first_agree = 0.0;
};

E11Cell run_cell(NodeId n, Count t, Count trials) {
    Samples first_agree;
    Count agreements = 0;
    for (Count i = 0; i < trials; ++i) {
        const SeedTree seeds(0xE11 + n * 1009ULL + t * 31ULL + i);
        const auto params = base::SamplingMajorityParams::compute(n, t, 4.0);
        auto nodes = base::make_sampling_majority_nodes(
            params, sim::make_inputs(sim::InputPattern::Split, n, seeds), seeds);
        adv::MajorityBalancerAdversary adversary({t, 0});
        net::Engine eng({n, t, params.rounds + 1, false}, std::move(nodes), adversary);
        Round first = params.rounds;
        bool found = false;
        eng.set_round_observer([&](Round r, const auto& live, const auto& honest) {
            if (found) return;
            std::optional<Bit> v;
            for (NodeId u = 0; u < live.size(); ++u) {
                if (!honest[u]) continue;
                const Bit b = live[u]->current_value();
                if (!v) {
                    v = b;
                } else if (*v != b) {
                    return;
                }
            }
            first = r;
            found = true;
        });
        const auto res = eng.run();
        if (res.agreement()) ++agreements;
        first_agree.add(static_cast<double>(first));
    }
    E11Cell cell;
    cell.agree_rate = 100.0 * agreements / trials;
    cell.mean_first_agree = first_agree.mean();
    cell.p90_first_agree = first_agree.quantile(0.9);
    return cell;
}

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 15));
    std::printf("E11: sampling-majority vs the drift-cancelling balancer "
                "(%u trials/cell).\n", trials);

    Table tab("E11: convergence vs balancer budget (split inputs)");
    tab.set_header({"n", "t", "t/sqrt(n)", "agree %", "mean 1st-agree round",
                    "p90 1st-agree"});
    for (NodeId n : {256u, 1024u}) {
        const double sq = std::sqrt(static_cast<double>(n));
        for (double ratio : {0.0, 0.5, 1.0, 2.0, 4.0}) {
            auto t = static_cast<Count>(std::lround(ratio * sq));
            if (3 * t >= n) t = (n - 1) / 3;
            const E11Cell cell = run_cell(n, t, trials);
            tab.add_row({Table::num(std::uint64_t{n}), Table::num(std::uint64_t{t}),
                         Table::num(ratio, 1), Table::num(cell.agree_rate, 1),
                         Table::num(cell.mean_first_agree, 1),
                         Table::num(cell.p90_first_agree, 1)});
        }
    }
    tab.print(std::cout);
    std::printf(
        "Shape check vs paper §1.3: below the sqrt(n) scale the balancer only\n"
        "buys a handful of balanced rounds (its per-round bill is the Θ(sqrt n)\n"
        "drift), so convergence is barely delayed; well above sqrt(n) the first-\n"
        "agree round grows — the same frontier Theorem 3 defends with the\n"
        "Paley-Zygmund bound, appearing in a completely different protocol.\n");
}

void BM_sampling_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = 256;
    s.t = 16;
    s.protocol = sim::ProtocolKind::SamplingMajority;
    s.adversary = sim::AdversaryKind::Balancer;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_sampling_trial);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
