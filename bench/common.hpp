// Shared plumbing for the experiment bench binaries.
//
// Every bench prints its reproduction table(s) first (the deliverable that
// EXPERIMENTS.md records) and then runs its google-benchmark timing entries
// so `for b in build/bench/*; do $b; done` produces both.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"

namespace adba::benchutil {

/// Hands the non-experiment arguments (argv[0] + --benchmark_* flags) to
/// google-benchmark and runs the registered entries.
inline void run_benchmark_tail(const Cli& cli) {
    std::vector<std::string> args = cli.passthrough();
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& s : args) argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());
    benchmark::Initialize(&argc, argv.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
}

/// With `--csv_dir=DIR`, also dumps the table as DIR/<slug>.csv so plots
/// and EXPERIMENTS.md extraction stay mechanical.
inline void maybe_write_csv(const Cli& cli, const Table& table, const std::string& slug) {
    const std::string dir = cli.get("csv_dir", "");
    if (dir.empty()) return;
    std::ofstream out(dir + "/" + slug + ".csv");
    out << table.to_csv();
}

/// Formats a bootstrap CI as "lo..hi".
inline std::string ci_str(double lo, double hi, int precision = 1) {
    return Table::num(lo, precision) + ".." + Table::num(hi, precision);
}

}  // namespace adba::benchutil
