// Shared plumbing for the experiment bench binaries.
//
// Every bench prints its reproduction table(s) first (the deliverable that
// EXPERIMENTS.md records) and then runs its google-benchmark timing entries
// so `for b in build/bench/*; do $b; done` produces both.
//
// Common CLI contract (on top of each bench's own flags):
//   --threads=N   worker threads for the Monte-Carlo executor
//                 (default: hardware concurrency; results are bit-identical
//                 at any thread count)
//   --intra_threads=N  default intra-trial shard count (0 = auto policy;
//                 results are bit-identical at any value)
//   --trials=N    trials per scenario cell
//   --csv_dir=DIR also dump each table as DIR/<slug>.csv
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/executor.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace adba::benchutil {

/// Applies `--threads` (default: hardware concurrency) as the process-wide
/// executor default and returns the resolved count. Call once at the top of
/// main(), before any experiment runs.
inline unsigned init_threads(const Cli& cli) { return sim::init_threads(cli); }

/// Applies `--intra_threads` (default: the ADBA_INTRA_THREADS environment
/// variable, else auto) as the process-wide intra-trial shard default.
inline unsigned init_intra_threads(const Cli& cli) {
    return sim::init_intra_threads(cli);
}

/// Guard for benches whose workload has no fused trial plane (the coin and
/// multi-valued stacks): a stray `--fused` fails loudly with a pointer at
/// the binary-stack benches instead of being silently dropped — mirroring
/// the coin workload's `--plane` rejection in adba_sim. `what` names the
/// bench's workload for the message, e.g. "the standalone coin experiments".
inline void reject_fused(const Cli& cli, const std::string& what) {
    if (cli.has("fused"))
        throw ContractViolation(
            "--fused selects the binary stack's 64-lane trial plane; " + what +
            " have no fused form (drop the flag or use a binary-stack bench "
            "such as bench_e10_engine)");
}

/// Hands the non-experiment arguments (argv[0] + --benchmark_* flags) to
/// google-benchmark and runs the registered entries. Also the point where
/// strict flag checking fires: every experiment flag has been read by now,
/// so anything left over is a typo (e.g. `--trails=50`) and aborts loudly
/// instead of silently running with defaults.
inline void run_benchmark_tail(const Cli& cli) {
    cli.check_unused();
    std::vector<std::string> args = cli.passthrough();
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (auto& s : args) argv.push_back(s.data());
    int argc = static_cast<int>(argv.size());
    benchmark::Initialize(&argc, argv.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
}

/// With `--csv_dir=DIR`, also dumps the table as DIR/<slug>.csv so plots
/// and EXPERIMENTS.md extraction stay mechanical. Creates DIR if absent and
/// throws (loudly) when the file cannot be written — a silently dropped
/// reproduction table is worse than a crash.
inline void maybe_write_csv(const Cli& cli, const Table& table, const std::string& slug) {
    const std::string dir = cli.get("csv_dir", "");
    if (dir.empty()) return;
    const std::string path = write_csv(table, dir, slug);
    std::printf("wrote %s\n", path.c_str());
}

/// Formats a bootstrap CI as "lo..hi".
inline std::string ci_str(double lo, double hi, int precision = 1) {
    return Table::num(lo, precision) + ".." + Table::num(hi, precision);
}

}  // namespace adba::benchutil
