// E4 — asymptotic scaling in n (macro simulator): the regime where the
// paper's t^2 log n / n term beats Chor-Coan's t / log n.
//
// Paper reference: §1.2 ("our running time is significantly better ... for
// t = o(n / log^2 n)"; "when t = n^0.75, our protocol takes O(n^0.5 log n)
// rounds whereas Chor and Coan's bound is O(n^0.75/log n)").
//
// The full-fidelity engine stops at a few thousand nodes (n^2 messages per
// round); the macro simulator (src/sim/macro, calibrated against the engine
// in test_sim) reproduces the same worst-case dynamics in O(s) per phase,
// reaching n = 2^20. Substitution documented in DESIGN.md §2/§5.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/macro.hpp"
#include "sim/report.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

sim::MacroAggregate macro_cell(sim::MacroScheduleKind schedule, std::uint64_t n,
                               std::uint64_t t, int trials) {
    sim::MacroScenario m;
    m.n = n;
    m.t = t;
    m.q = t;
    m.schedule = schedule;
    return sim::run_macro_trials(m, 0xE4 + n, static_cast<Count>(trials));
}

template <typename TofN>
void regime_table(const Cli& cli, const char* title, const char* slug, TofN t_of_n,
                  int trials, std::ostream& os) {
    Table t(title);
    t.set_header({"n", "t", "ours (macro)", "cc-rushing (macro)", "ratio",
                  "thy ours", "thy cc", "thy LB"});
    std::vector<std::pair<std::string, sim::MacroAggregate>> cells;
    for (std::uint64_t lg = 12; lg <= 20; lg += 2) {
        const std::uint64_t n = 1ull << lg;
        auto tt = static_cast<std::uint64_t>(t_of_n(static_cast<double>(n)));
        if (3 * tt >= n) tt = n / 3 - 1;
        const auto ours_agg = macro_cell(sim::MacroScheduleKind::Ours, n, tt, trials);
        const auto cc_agg =
            macro_cell(sim::MacroScheduleKind::ChorCoanRushing, n, tt, trials);
        const double ours = ours_agg.rounds.mean();
        const double cc = cc_agg.rounds.mean();
        const std::string base =
            "n=" + std::to_string(n) + " t=" + std::to_string(tt) + " ";
        cells.emplace_back(base + "ours(macro)", ours_agg);
        cells.emplace_back(base + "cc-rushing(macro)", cc_agg);
        t.add_row({Table::num(n), Table::num(tt), Table::num(ours, 1),
                   Table::num(cc, 1), Table::num(ours / cc, 2),
                   Table::num(an::rounds_ours(double(n), double(tt)), 1),
                   Table::num(an::rounds_chor_coan(double(n), double(tt)), 1),
                   Table::num(an::rounds_lower_bound(double(n), double(tt)), 2)});
    }
    t.print(os);
    benchutil::maybe_write_csv(cli, sim::csv_table(t.title(), cells), slug);
}

void experiment(const Cli& cli) {
    const auto trials = static_cast<int>(cli.get_int("trials", 15));
    std::printf("E4: scaling in n at fixed t-regimes (macro simulator, %d trials, "
                "%u threads).\n\n", trials, sim::default_threads());
    regime_table(cli, "E4a: t = sqrt(n)  — the paper's near-optimal point",
                 "e4a_sqrt_n", [](double n) { return std::pow(n, 0.5); }, trials,
                 std::cout);
    regime_table(cli, "E4b: t = n^0.6   — inside the improvement window",
                 "e4b_n_0p6", [](double n) { return std::pow(n, 0.6); }, trials,
                 std::cout);
    regime_table(cli, "E4c: t = n^0.75  — the paper's headline example",
                 "e4c_n_0p75", [](double n) { return std::pow(n, 0.75); }, trials,
                 std::cout);
    regime_table(cli, "E4d: t = n/4     — near maximal resilience",
                 "e4d_n_over_4", [](double n) { return n / 4.0; }, trials, std::cout);
    std::printf(
        "Shape check vs paper: at t = sqrt(n) (E4a) ours stays ~flat in rounds\n"
        "(Õ(log n) phases) while cc-rushing grows ~t/log n — the ratio falls\n"
        "with n. At t = n^0.75 (E4c) the min() saturates at simulable n (the\n"
        "log-factor separation needs n ≳ 2^56, see EXPERIMENTS.md) so the ratio\n"
        "hovers near 1. Near n/3 (E4d) both coincide, as Theorem 2 predicts.\n");
}

void BM_macro_trial(benchmark::State& state) {
    sim::MacroScenario m;
    m.n = 1ull << 18;
    m.t = 512;
    m.q = m.t;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_macro_trial(m, seed++));
}
BENCHMARK(BM_macro_trial);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
