// E5 — Theorem 2, second clause: if the adversary actually corrupts only
// q < t nodes, Algorithm 3 terminates in O(min(q^2 log n / n, q / log n))
// rounds — the protocol pays for the attack it receives, not for the one it
// tolerates.
//
// Paper reference: §1.2 + Theorem 2 ("if only q < t nodes are corrupted...
// the protocol will terminate in O(min(q^2 log n/n, q/log n)) rounds").
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 256));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 30));
    std::printf("E5: early termination — budget t=%u fixed, actual corruptions q "
                "sweep (n=%u, %u trials).\n", t, n, trials);

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.adversary = sim::AdversaryKind::WorstCase;
    grid.base.inputs = sim::InputPattern::Split;
    grid.qs = {0, 2, 5, 10, 20, 40, t};
    grid.filter = [t](const sim::Scenario& s) { return s.q.value_or(t) <= t; };

    Table tab("E5: rounds vs actual corruptions q (worst-case adversary, split inputs)");
    tab.set_header({"q", "mean rounds", "p90 rounds", "max rounds", "mean corruptions",
                    "thy min(q^2logn/n, q/logn)", "agree %"});
    const auto outcomes = sim::run_sweep(grid, 0xE5, trials);
    for (const auto& o : outcomes) {
        const auto& agg = o.agg;
        const Count q = *o.row.scenario.q;
        tab.add_row({Table::num(std::uint64_t{q}), Table::num(agg.rounds.mean(), 1),
                     Table::num(agg.rounds.quantile(0.9), 1),
                     Table::num(agg.rounds.max(), 0),
                     Table::num(agg.corruptions.mean(), 1),
                     Table::num(an::rounds_ours(double(n), double(q)), 2),
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e5_early_termination");
    std::printf(
        "Shape check vs paper: rounds grow with q, not with the budget t — at\n"
        "q=0 the very first committee coin ends the run (6 rounds flat); the\n"
        "q-scaling tracks the theory column's growth up to constants, because\n"
        "each ruined phase costs the adversary ~sqrt(s)/2 of its q.\n");
}

void BM_early_term(benchmark::State& state) {
    sim::Scenario s;
    s.n = 128;
    s.t = 42;
    s.q = static_cast<Count>(state.range(0));
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_early_term)->Arg(0)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
