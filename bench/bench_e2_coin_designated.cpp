// E2 — Corollary 1: the designated-node coin (Algorithm 2) is a common coin
// while at most ½·sqrt(k) of the k designated flippers are Byzantine — the
// committee-scaling fact Algorithm 3 is built on.
//
// Regenerates P(common) over (k, f) at fixed n, showing the ½·sqrt(k)
// perimeter is independent of n. Paper reference: §3.1, Algorithm 2,
// Corollary 1 (proofs only; this is the measurable form).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 1024));
    const auto trials = static_cast<Count>(cli.get_int("trials", 1200));
    std::printf("E2: designated-node common coin (Algorithm 2) at n=%u.\n", n);

    const std::vector<double> ratios = {0.0, 0.25, 0.5, 1.0, 2.0};
    sim::CoinSweepGrid grid;
    grid.ns = {n};
    grid.ks = {16, 64, 256, 1024};  // rows with k > n are skipped by the grid
    grid.f_ratios = ratios;
    const auto outcomes = sim::run_coin_sweep(grid, 0xE2, trials);

    Table t("E2: P(common) by committee size k and corruption budget f");
    t.set_header({"k", "f=0", "f=0.25*sqrt(k)", "f=0.5*sqrt(k) (cor.1)",
                  "f=sqrt(k)", "f=2*sqrt(k)"});
    for (std::size_t i = 0; i < outcomes.size(); i += ratios.size()) {
        std::vector<std::string> row{
            Table::num(std::uint64_t{outcomes[i].row.scenario.designated})};
        for (std::size_t r = 0; r < ratios.size(); ++r)
            row.push_back(Table::num(outcomes[i + r].agg.p_common(), 3));
        t.add_row(std::move(row));
    }
    t.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(t.title(), outcomes),
                               "e2_designated_coin");
    std::printf(
        "Shape check vs paper: every row shows the same profile — constant\n"
        "commonness through f = 0.5*sqrt(k), collapse by f = 2*sqrt(k) — i.e.\n"
        "the defense perimeter scales with the committee, not the network.\n"
        "This is Corollary 1, and it is why phase i of Algorithm 3 can delegate\n"
        "its coin to a committee of s = n/c nodes.\n");
}

void BM_designated_coin(benchmark::State& state) {
    const auto k = static_cast<NodeId>(state.range(0));
    const sim::CoinScenario s{1024, k, static_cast<Count>(std::sqrt(double(k)) / 2),
                              adv::CoinAttack::Split, 0};
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_coin_trial(s, seed++));
}
BENCHMARK(BM_designated_coin)->Arg(16)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    adba::benchutil::reject_fused(cli, "the standalone coin experiments");
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
