// E8 — adversary ablation: the paper's robustness claim ("works under the
// powerful adaptive rushing adversary in the full information model", §1.2)
// quantified: agreement rate and measured rounds for Algorithm 3 under
// every implemented adversary class, plus the static-vs-adaptive gap that
// motivates the paper (§1: GPV's O(log n) protocol assumes a static
// adversary; the adaptive lower bound is polynomially higher).
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 25));
    std::printf("E8: adversary ablation for Algorithm 3 (n=%u, t=%u, split inputs, "
                "%u trials).\n", n, t, trials);

    struct Traits {
        sim::AdversaryKind kind;
        const char* adaptive;
        const char* rushing;
    };
    const Traits traits[] = {
        {sim::AdversaryKind::None, "-", "-"},
        {sim::AdversaryKind::Static, "no", "no"},
        {sim::AdversaryKind::SplitVote, "no", "no"},
        {sim::AdversaryKind::Chaos, "yes", "no"},
        {sim::AdversaryKind::CrashRandom, "yes", "yes"},
        {sim::AdversaryKind::CrashTargetedCoin, "yes", "yes"},
        {sim::AdversaryKind::WorstCase, "yes", "yes"},
    };

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.inputs = sim::InputPattern::Split;
    for (const auto& r : traits) grid.adversaries.push_back(r.kind);
    const auto outcomes = sim::run_sweep(grid, 0xE8, trials);

    Table tab("E8a: Algorithm 3 under every adversary class");
    tab.set_header({"adversary", "adaptive?", "rushing?", "agree %", "mean rounds",
                    "p90", "mean corruptions"});
    for (const auto& o : outcomes) {
        const Traits* trait = nullptr;
        for (const auto& r : traits)
            if (r.kind == o.row.scenario.adversary) trait = &r;
        const auto& agg = o.agg;
        tab.add_row({sim::to_string(trait->kind), trait->adaptive,
                     trait->rushing,
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1),
                     Table::num(agg.rounds.quantile(0.9), 1),
                     Table::num(agg.corruptions.mean(), 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, tab, "e8a_adversary_ablation");

    struct P {
        sim::ProtocolKind kind;
        const char* note;
    };
    const P ps[] = {
        {sim::ProtocolKind::Ours, "Theorem 2"},
        {sim::ProtocolKind::ChorCoanRushing, "footnote-3 comparator"},
        {sim::ProtocolKind::ChorCoanClassic, "1985 shape under rushing"},
        {sim::ProtocolKind::RabinDealer, "ideal dealer coin floor"},
    };
    sim::SweepGrid grid2;
    grid2.base.n = n;
    grid2.base.t = t;
    grid2.base.inputs = sim::InputPattern::Split;
    for (const auto& p : ps) grid2.protocols.push_back(p.kind);
    grid2.adversary_of = sim::strongest_adversary;
    const auto outcomes2 = sim::run_sweep(grid2, 0xE8B, trials);

    Table tab2("E8b: protocol family under the worst-case rushing adversary");
    tab2.set_header({"protocol", "agree %", "mean rounds", "note"});
    for (const auto& o : outcomes2) {
        const P* p = nullptr;
        for (const auto& candidate : ps)
            if (candidate.kind == o.row.scenario.protocol) p = &candidate;
        const auto& agg = o.agg;
        tab2.add_row({sim::to_string(p->kind),
                      Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                     agg.trials, 1),
                      Table::num(agg.rounds.mean(), 1), p->note});
    }
    tab2.print(std::cout);
    benchutil::maybe_write_csv(cli, tab2, "e8b_protocol_family");
    std::printf(
        "Shape check vs paper: agreement holds at 100%% against every class;\n"
        "only the schedule-aware rushing attack stretches the run — static and\n"
        "non-rushing adversaries are absorbed in O(1) phases, which is exactly\n"
        "why static-adversary protocols (GPV 2006) cannot be compared to\n"
        "adaptive-adversary ones, the paper's central framing.\n");
}

void BM_gauntlet_cell(benchmark::State& state) {
    sim::Scenario s;
    s.n = 128;
    s.t = 42;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = static_cast<sim::AdversaryKind>(state.range(0));
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_gauntlet_cell)
    ->Arg(static_cast<int>(sim::AdversaryKind::None))
    ->Arg(static_cast<int>(sim::AdversaryKind::WorstCase));

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
