// E8 — adversary ablation: the paper's robustness claim ("works under the
// powerful adaptive rushing adversary in the full information model", §1.2)
// quantified: agreement rate and measured rounds for Algorithm 3 under
// every implemented adversary class, plus the static-vs-adaptive gap that
// motivates the paper (§1: GPV's O(log n) protocol assumes a static
// adversary; the adaptive lower bound is polynomially higher).
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 25));
    std::printf("E8: adversary ablation for Algorithm 3 (n=%u, t=%u, split inputs, "
                "%u trials).\n", n, t, trials);

    // Every adversary in the registry that can face Algorithm 3, with the
    // adaptive/rushing columns taken from its capability metadata.
    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.inputs = sim::InputPattern::Split;
    for (const auto* e : sim::AdversaryRegistry::instance().list())
        grid.adversaries.push_back(e->kind);
    grid.filter = [](const sim::Scenario& s) { return sim::compatible(s); };
    const auto outcomes = sim::run_sweep(grid, 0xE8, trials);

    Table tab("E8a: Algorithm 3 under every adversary class");
    tab.set_header({"adversary", "adaptive?", "rushing?", "agree %", "mean rounds",
                    "p90", "mean corruptions"});
    for (const auto& o : outcomes) {
        const auto& entry =
            sim::AdversaryRegistry::instance().at(o.row.scenario.adversary);
        const auto& agg = o.agg;
        tab.add_row({entry.display, entry.adaptive, entry.rushing,
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1),
                     Table::num(agg.rounds.quantile(0.9), 1),
                     Table::num(agg.corruptions.mean(), 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e8a_adversary_ablation");

    // The comparison family, selected from the registry BY NAME — adding a
    // comparator here is a string, not an enum edit.
    sim::SweepGrid grid2;
    grid2.base.n = n;
    grid2.base.t = t;
    grid2.base.inputs = sim::InputPattern::Split;
    for (const char* name :
         {"ours", "chor-coan-rushing", "chor-coan-classic", "rabin-dealer"})
        grid2.protocols.push_back(sim::ProtocolRegistry::instance().at(name).kind);
    grid2.adversary_of = sim::strongest_adversary;
    const auto outcomes2 = sim::run_sweep(grid2, 0xE8B, trials);

    Table tab2("E8b: protocol family under the worst-case rushing adversary");
    tab2.set_header({"protocol", "agree %", "mean rounds", "note"});
    for (const auto& o : outcomes2) {
        const auto& entry = sim::ProtocolRegistry::instance().at(o.row.scenario.protocol);
        const auto& agg = o.agg;
        tab2.add_row({entry.display,
                      Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                     agg.trials, 1),
                      Table::num(agg.rounds.mean(), 1), entry.summary});
    }
    tab2.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab2.title(), outcomes2),
                               "e8b_protocol_family");
    std::printf(
        "Shape check vs paper: agreement holds at 100%% against every class;\n"
        "only the schedule-aware rushing attack stretches the run — static and\n"
        "non-rushing adversaries are absorbed in O(1) phases, which is exactly\n"
        "why static-adversary protocols (GPV 2006) cannot be compared to\n"
        "adaptive-adversary ones, the paper's central framing.\n");
}

void BM_gauntlet_cell(benchmark::State& state) {
    sim::Scenario s;
    s.n = 128;
    s.t = 42;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = static_cast<sim::AdversaryKind>(state.range(0));
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_gauntlet_cell)
    ->Arg(static_cast<int>(sim::AdversaryKind::None))
    ->Arg(static_cast<int>(sim::AdversaryKind::WorstCase));

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
