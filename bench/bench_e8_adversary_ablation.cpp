// E8 — adversary ablation: the paper's robustness claim ("works under the
// powerful adaptive rushing adversary in the full information model", §1.2)
// quantified: agreement rate and measured rounds for Algorithm 3 under
// every implemented adversary class, plus the static-vs-adaptive gap that
// motivates the paper (§1: GPV's O(log n) protocol assumes a static
// adversary; the adaptive lower bound is polynomially higher).
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "sim/runner.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 25));
    std::printf("E8: adversary ablation for Algorithm 3 (n=%u, t=%u, split inputs, "
                "%u trials).\n", n, t, trials);

    Table tab("E8a: Algorithm 3 under every adversary class");
    tab.set_header({"adversary", "adaptive?", "rushing?", "agree %", "mean rounds",
                    "p90", "mean corruptions"});
    struct Row {
        sim::AdversaryKind kind;
        const char* adaptive;
        const char* rushing;
    };
    const Row rows[] = {
        {sim::AdversaryKind::None, "-", "-"},
        {sim::AdversaryKind::Static, "no", "no"},
        {sim::AdversaryKind::SplitVote, "no", "no"},
        {sim::AdversaryKind::Chaos, "yes", "no"},
        {sim::AdversaryKind::CrashRandom, "yes", "yes"},
        {sim::AdversaryKind::CrashTargetedCoin, "yes", "yes"},
        {sim::AdversaryKind::WorstCase, "yes", "yes"},
    };
    for (const auto& r : rows) {
        sim::Scenario s;
        s.n = n;
        s.t = t;
        s.protocol = sim::ProtocolKind::Ours;
        s.adversary = r.kind;
        s.inputs = sim::InputPattern::Split;
        const auto agg = sim::run_trials(s, 0xE8, trials);
        tab.add_row({sim::to_string(r.kind), r.adaptive, r.rushing,
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1),
                     Table::num(agg.rounds.quantile(0.9), 1),
                     Table::num(agg.corruptions.mean(), 1)});
    }
    tab.print(std::cout);

    Table tab2("E8b: protocol family under the worst-case rushing adversary");
    tab2.set_header({"protocol", "agree %", "mean rounds", "note"});
    struct P {
        sim::ProtocolKind kind;
        sim::AdversaryKind adversary;
        const char* note;
    };
    const P ps[] = {
        {sim::ProtocolKind::Ours, sim::AdversaryKind::WorstCase, "Theorem 2"},
        {sim::ProtocolKind::ChorCoanRushing, sim::AdversaryKind::WorstCase,
         "footnote-3 comparator"},
        {sim::ProtocolKind::ChorCoanClassic, sim::AdversaryKind::WorstCase,
         "1985 shape under rushing"},
        {sim::ProtocolKind::RabinDealer, sim::AdversaryKind::SplitVote,
         "ideal dealer coin floor"},
    };
    for (const auto& p : ps) {
        sim::Scenario s;
        s.n = n;
        s.t = t;
        s.protocol = p.kind;
        s.adversary = p.adversary;
        s.inputs = sim::InputPattern::Split;
        const auto agg = sim::run_trials(s, 0xE8B, trials);
        tab2.add_row({sim::to_string(p.kind),
                      Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                     agg.trials, 1),
                      Table::num(agg.rounds.mean(), 1), p.note});
    }
    tab2.print(std::cout);
    std::printf(
        "Shape check vs paper: agreement holds at 100%% against every class;\n"
        "only the schedule-aware rushing attack stretches the run — static and\n"
        "non-rushing adversaries are absorbed in O(1) phases, which is exactly\n"
        "why static-adversary protocols (GPV 2006) cannot be compared to\n"
        "adaptive-adversary ones, the paper's central framing.\n");
}

void BM_gauntlet_cell(benchmark::State& state) {
    sim::Scenario s;
    s.n = 128;
    s.t = 42;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = static_cast<sim::AdversaryKind>(state.range(0));
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_gauntlet_cell)
    ->Arg(static_cast<int>(sim::AdversaryKind::None))
    ->Arg(static_cast<int>(sim::AdversaryKind::WorstCase));

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
