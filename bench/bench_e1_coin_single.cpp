// E1 — Theorem 3: Algorithm 1 is a common coin under an adaptive rushing
// adversary corrupting up to ½·sqrt(n) nodes.
//
// Regenerates, for each n, the curve P(common) and P(1|common) as the
// corruption budget sweeps through the ½·sqrt(n) threshold, against the
// optimal greedy split attack and the value-biasing attack.
// Paper reference: §3.1, Theorem 3, Definition 2. No table/figure exists in
// the paper (proofs only); this is the measurable form of the claim.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 1500));
    std::printf("E1: common coin (Algorithm 1) vs adaptive rushing corruption.\n");
    std::printf("Definition 2 asks: P(common) >= delta and P(bit|common) in "
                "[eps, 1-eps].\nPaper proof floor: delta >= 1/6 at f = sqrt(n)/2.\n");

    const std::vector<NodeId> ns = {64, 256, 1024};
    const std::vector<double> ratios = {0.0, 0.25, 0.5, 1.0, 1.5, 2.0};

    sim::CoinSweepGrid grid;
    grid.ns = ns;  // k defaults to n: Algorithm 1, every node flips
    grid.f_ratios = ratios;
    const auto outcomes = sim::run_coin_sweep(grid, 0xE1A, trials);

    Table t1("E1a: P(common) under the SPLIT attack, by f/sqrt(n)");
    t1.set_header({"n", "f=0", "0.25", "0.5 (thm)", "1.0", "1.5", "2.0",
                   "PZ tail floor @0.5"});
    auto it = outcomes.begin();
    for (NodeId n : ns) {
        std::vector<std::string> row{Table::num(std::uint64_t{n})};
        for (std::size_t r = 0; r < ratios.size(); ++r, ++it)
            row.push_back(Table::num(it->agg.p_common(), 3));
        row.push_back(Table::num(
            an::coin_common_prob_lower(static_cast<double>(n),
                                       0.5 * std::sqrt(static_cast<double>(n))), 3));
        t1.add_row(std::move(row));
    }
    t1.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(t1.title(), outcomes),
                               "e1a_p_common");

    Table t2("E1b: P(value=1 | common) under the FORCE-BIT attack at f = sqrt(n)/2");
    t2.set_header({"n", "no attack", "force 1", "force 0", "Def.2(B) band"});
    std::vector<std::pair<std::string, sim::CoinAggregate>> b_cells;
    for (NodeId n : ns) {
        const auto f = static_cast<Count>(std::lround(0.5 * std::sqrt(double(n))));
        std::vector<std::string> row{Table::num(std::uint64_t{n})};
        {
            const sim::CoinScenario s{n, n, 0, adv::CoinAttack::Split, 0};
            const auto agg = sim::run_coin_trials(s, 0xE1B + n, trials);
            row.push_back(Table::num(agg.p_one_given_common(), 3));
            b_cells.emplace_back("n=" + std::to_string(n) + " no-attack", agg);
        }
        for (Bit target : {Bit{1}, Bit{0}}) {
            const sim::CoinScenario s{n, n, f, adv::CoinAttack::ForceBit, target};
            const auto agg = sim::run_coin_trials(s, 0xE1C + n + target, trials);
            row.push_back(Table::num(agg.p_one_given_common(), 3));
            b_cells.emplace_back("n=" + std::to_string(n) + " force-" +
                                     std::to_string(int(target)),
                                 agg);
        }
        row.push_back("within (0,1)");
        t2.add_row(std::move(row));
    }
    t2.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::csv_table(t2.title(), b_cells),
                               "e1b_force_bit");
    std::printf(
        "Shape check vs paper: P(common) at the theorem budget is a constant\n"
        "(~0.32 = 2*Phi(-1), independent of n; proof floor 1/6) and collapses\n"
        "beyond it; the biasing attack cannot push the conditional value out of\n"
        "a constant band. Both clauses of Definition 2 reproduce.\n");
}

void BM_coin_trial_n256(benchmark::State& state) {
    const sim::CoinScenario s{256, 256, 8, adv::CoinAttack::Split, 0};
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_coin_trial(s, seed++));
    }
}
BENCHMARK(BM_coin_trial_n256);

void BM_coin_trial_n1024(benchmark::State& state) {
    const sim::CoinScenario s{1024, 1024, 16, adv::CoinAttack::Split, 0};
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_coin_trial(s, seed++));
    }
}
BENCHMARK(BM_coin_trial_n1024);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    adba::benchutil::reject_fused(cli, "the standalone coin experiments");
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
