// E3 — Theorem 2 headline: measured rounds-to-agreement vs t for
// Algorithm 3 against the strongest implemented adversary, with every
// baseline and the theory curves on the same axis.
//
// Paper reference: abstract + §1.2 + Theorem 2 —
//   ours      O(min(t^2 log n / n, t / log n))
//   Chor-Coan O(t / log n)
//   determin. t + 1   (Phase-King measures 2(t+1))
//   BJBO LB   Omega(t / sqrt(n log n))
// Who should win where: ours <= Chor-Coan everywhere (the min), strictly
// better for t below n/log^2 n at asymptotic n (E4 covers that regime with
// the macro simulator; at micro scale the min mostly saturates).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/bootstrap.hpp"
#include "analysis/bounds.hpp"
#include "analysis/related_work.hpp"
#include "bench/common.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/math.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 256));
    const auto trials = static_cast<Count>(cli.get_int("trials", 25));
    an::related_work_table().print(std::cout);
    std::printf("E3: rounds vs t at n=%u (split inputs, strongest adversary per "
                "protocol, %u trials/cell).\n", n, trials);

    const auto sqrt_n = static_cast<Count>(isqrt(n));
    std::vector<Count> ts = {2,
                             sqrt_n / 2,
                             sqrt_n,
                             static_cast<Count>(2 * sqrt_n),
                             static_cast<Count>(n / 8),
                             static_cast<Count>(n / 5),
                             static_cast<Count>((n - 1) / 3)};
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.inputs = sim::InputPattern::Split;
    grid.ts = ts;
    grid.protocols = {sim::ProtocolKind::Ours, sim::ProtocolKind::ChorCoanRushing,
                      sim::ProtocolKind::ChorCoanClassic, sim::ProtocolKind::PhaseKing,
                      sim::ProtocolKind::RabinDealer};
    grid.adversary_of = sim::strongest_adversary;
    // Registry resilience metadata drops the cells a protocol cannot run
    // (phase-king at t >= n/4 here) instead of a hand-rolled predicate.
    grid.filter = [](const sim::Scenario& s) { return sim::compatible(s); };
    const auto outcomes = sim::run_sweep(grid, 0xE3, trials);

    auto cell = [&](Count t, sim::ProtocolKind p) -> const sim::Aggregate* {
        for (const auto& o : outcomes)
            if (o.row.scenario.t == t && o.row.scenario.protocol == p) return &o.agg;
        return nullptr;
    };

    Count failures = 0;
    for (const auto& o : outcomes) failures += o.agg.agreement_failures;

    Table t1("E3: measured mean rounds vs t (n=" + std::to_string(n) + ")");
    t1.set_header({"t", "ours", "ours 95% CI", "cc-rushing", "cc-classic", "phase-king",
                   "rabin-dealer", "thy ours", "thy cc", "thy det", "thy LB"});
    // Any cell can be missing: the registry-driven filter drops every
    // (protocol, t) the resilience metadata rules out (e.g. tiny --n).
    auto mean_str = [&](Count t, sim::ProtocolKind p) -> std::string {
        const auto* agg = cell(t, p);
        return agg ? Table::num(agg->rounds.mean(), 1) : "n/a(infeasible)";
    };
    for (Count t : ts) {
        std::vector<std::string> row{Table::num(std::uint64_t{t})};
        if (const auto* ours = cell(t, sim::ProtocolKind::Ours)) {
            row.push_back(Table::num(ours->rounds.mean(), 1));
            const auto ci = an::bootstrap_mean_ci(ours->rounds.values());
            row.push_back(benchutil::ci_str(ci.lo, ci.hi));
        } else {
            row.push_back("n/a(infeasible)");
            row.push_back("-");
        }
        row.push_back(mean_str(t, sim::ProtocolKind::ChorCoanRushing));
        row.push_back(mean_str(t, sim::ProtocolKind::ChorCoanClassic));
        row.push_back(mean_str(t, sim::ProtocolKind::PhaseKing));
        row.push_back(mean_str(t, sim::ProtocolKind::RabinDealer));
        const auto dn = static_cast<double>(n);
        const auto dt = static_cast<double>(t);
        row.push_back(Table::num(an::rounds_ours(dn, dt), 1));
        row.push_back(Table::num(an::rounds_chor_coan(dn, dt), 1));
        row.push_back(Table::num(an::rounds_deterministic(dt), 0));
        row.push_back(Table::num(an::rounds_lower_bound(dn, dt), 2));
        t1.add_row(std::move(row));
    }
    t1.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(t1.title(), outcomes),
                               "e3_rounds_vs_t");
    std::printf("agreement failures across all cells: %u (Theorem 2 expects 0 w.h.p.)\n",
                failures);
    std::printf(
        "Shape check vs paper: ours <= cc-rushing at every t (the min); both\n"
        "grow ~linearly in t once t >> sqrt(n) (budget-bound regime, ~2 phases\n"
        "ruined per ~sqrt(s)/2 corruptions); phase-king is the deterministic\n"
        "2(t+1) line crossed by the randomized protocols; the dealer floor is\n"
        "flat O(1) phases; the BJBO lower bound sits far below everything.\n"
        "crossover t = n/log^2 n = %.1f at this n.\n",
        an::crossover_t(static_cast<double>(n)));
}

void BM_ours_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = 128;
    s.t = static_cast<Count>(state.range(0));
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_ours_trial)->Arg(8)->Arg(42);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
