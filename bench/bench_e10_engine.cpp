// E10 — simulator substrate throughput: the cost model behind every other
// experiment. Not a paper claim; reported so readers can size their own
// sweeps (messages delivered per second, trial latency vs n).
//
// The `throughput` section is the repo's perf trajectory point: single-
// thread trials/sec and ns per node-round for the skeleton protocol against
// the static adversary at n in {64, 256, 1024}, dumped to BENCH_engine.json
// (--bench_json=PATH; --bench_trials scales the n=256 trial count) so CI
// can archive the numbers per commit. Two further sections feed the same
// JSON: `sharded` (one huge-n trial split across intra-trial shard workers,
// speedup vs the serial entry at the same n), `tally_kernels` (bytes/sec
// of the packed popcount tally build vs the scalar byte-plane build, next
// to a streaming memory-bandwidth reference — the roofline the packed
// kernels are judged against) and `sparse` / `sparse_chain` (direct trials
// through the sampled delivery plane at n up to 2^20 — per-receiver sampled
// sender views, the regime the shared-tally trick cannot represent — one
// block per frozen sample-stream version, with trials/sec, ns per
// node-round, ns per sampled probe, delivered bytes per node-round, and the
// counter block's max/min ns flatness ratio across the n sweep). The
// `fused` block re-measures the small-n serial cells through the 64-lane
// fused trial plane (fused=true): trials/sec, ns per node-round, ns per
// trial, and speedup vs the scalar entry at the same n, plus the fixed
// per-block overhead priced on an early-deciding scenario.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "net/round_buffer.hpp"
#include "rand/rng.hpp"
#include "sim/macro.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

struct ThroughputPoint {
    NodeId n = 0;
    Count t = 0;
    Count trials = 0;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double mean_rounds = 0.0;
    double ns_per_node_round = 0.0;
    /// Outcome-taxonomy health counters: the regression gate rejects a
    /// baseline whose timing rows hide exhausted or faulted trials.
    Count exhausted = 0;  ///< cap_exhausted + watchdog_timeouts
    Count faulted = 0;
};

ThroughputPoint measure_throughput(NodeId n, Count trials, bool use_batch,
                                   Count intra_shards = 0) {
    sim::Scenario s;
    s.n = n;
    s.t = (n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::Static;
    s.inputs = sim::InputPattern::Split;
    s.use_batch = use_batch;
    s.intra_threads = intra_shards;

    const sim::ExecutorConfig serial{1, 0};  // the canonical single-thread metric
    (void)sim::run_trials(s, 0xE10, std::max<Count>(trials / 10, 2), serial);  // warm-up

    const auto start = std::chrono::steady_clock::now();
    const sim::Aggregate agg = sim::run_trials(s, 0xE10, trials, serial);
    const auto stop = std::chrono::steady_clock::now();

    ThroughputPoint p;
    p.n = n;
    p.t = s.t;
    p.trials = trials;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.trials_per_sec = p.seconds > 0 ? trials / p.seconds : 0.0;
    p.mean_rounds = agg.rounds.mean();
    const double node_rounds = agg.rounds.sum() * static_cast<double>(n);
    p.ns_per_node_round = node_rounds > 0 ? 1e9 * p.seconds / node_rounds : 0.0;
    p.exhausted = agg.cap_exhausted + agg.watchdog_timeouts;
    p.faulted = agg.faulted;
    return p;
}

// ---- sparse-plane throughput (the million-node direct-trial evidence) ----
//
// Same protocol/adversary shape as the serial entries but routed through
// the sampled delivery plane: every receiver probes its own seed-derived
// sender sample, so the receive beat is n*degree real per-edge probes —
// work the flat plane's shared tally cannot represent (it relies on all
// receivers seeing one honest broadcast). The scenario keeps honest counts
// several sampling standard deviations clear of the n-t quorum threshold
// (t = n/10 margin, q capped at 256): sampled estimates concentrate at
// ~0.5*n/sqrt(degree) standard error, so knife-edge q=t shapes would
// straddle the threshold and never converge — that is a property of
// sampling, not a bug, and the bench deliberately measures the regime the
// plane is built for.

struct SparsePoint {
    NodeId n = 0;
    Count t = 0;
    Count trials = 0;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double mean_rounds = 0.0;
    double ns_per_node_round = 0.0;
    double ns_per_probe = 0.0;
    double bytes_per_node_round = 0.0;
    Count exhausted = 0;  ///< cap_exhausted + watchdog_timeouts (gated at 0)
    Count faulted = 0;
};

SparsePoint measure_sparse(NodeId n, Count trials, Count degree,
                           net::SparseStream stream) {
    sim::Scenario s;
    s.n = n;
    s.t = n / 10;  // honest count well clear of the n-t threshold
    s.q = 256;     // small corruption budget: sampled quorums need slack
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::Static;
    s.inputs = sim::InputPattern::Split;
    s.sparse_plane = true;
    s.sample_degree = degree;
    s.sparse_stream = stream;

    const sim::ExecutorConfig serial{1, 0};
    (void)sim::run_trials(s, 0xE10, 1, serial);  // warm-up (pools, planes)

    const auto start = std::chrono::steady_clock::now();
    const sim::Aggregate agg = sim::run_trials(s, 0xE10, trials, serial);
    const auto stop = std::chrono::steady_clock::now();

    SparsePoint p;
    p.n = n;
    p.t = s.t;
    p.trials = trials;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.trials_per_sec = p.seconds > 0 ? trials / p.seconds : 0.0;
    p.mean_rounds = agg.rounds.mean();
    const double node_rounds = agg.rounds.sum() * static_cast<double>(n);
    p.ns_per_node_round = node_rounds > 0 ? 1e9 * p.seconds / node_rounds : 0.0;
    // Nominal per-edge cost: each node-round is `degree` sampled probes
    // (send/step beats are amortised into it, so this slightly overstates
    // the pure probe kernel — fine for a regression gate, which only needs
    // the number to be comparable run-over-run).
    p.ns_per_probe =
        degree > 0 ? p.ns_per_node_round / static_cast<double>(degree) : 0.0;
    const double bits_per_trial = agg.bits.mean();
    p.bytes_per_node_round =
        p.mean_rounds > 0
            ? bits_per_trial / 8.0 / static_cast<double>(n) / p.mean_rounds
            : 0.0;
    p.exhausted = agg.cap_exhausted + agg.watchdog_timeouts;
    p.faulted = agg.faulted;
    return p;
}

// ---- fused trial plane (64 Monte-Carlo trials per machine word) ----
//
// Same protocol/adversary shape as the serial entries but with fused=true:
// 64 trials co-execute bit-sliced, one uint64_t per node, so the per-trial
// cost of small-n cells stops being dominated by per-node bookkeeping.
// Trial counts are whole multiples of 64 so the chunk is all fused blocks
// (a scalar remainder would dilute the measurement); aggregates stay
// bit-identical to the scalar path, so the health counters gate the same
// way. `ns_per_trial_overhead` prices the fixed per-block cost (rearm,
// input packing, result scatter) on a fast-deciding all-one/no-adversary
// scenario where almost no protocol rounds run.

struct FusedPoint {
    NodeId n = 0;
    Count t = 0;
    Count trials = 0;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double mean_rounds = 0.0;
    double ns_per_node_round = 0.0;
    double ns_per_trial = 0.0;
    double speedup = 0.0;  ///< trials/sec vs the scalar entry at the same n
    Count exhausted = 0;
    Count faulted = 0;
};

FusedPoint measure_fused(NodeId n, Count trials, double scalar_tps) {
    sim::Scenario s;
    s.n = n;
    s.t = (n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::Static;
    s.inputs = sim::InputPattern::Split;
    s.use_fused = true;

    // One chunk per run: with trials % 64 == 0 every trial runs fused.
    (void)sim::run_trials(s, 0xE10, 64, sim::ExecutorConfig{1, 64});  // warm-up
    const auto start = std::chrono::steady_clock::now();
    const sim::Aggregate agg =
        sim::run_trials(s, 0xE10, trials, sim::ExecutorConfig{1, trials});
    const auto stop = std::chrono::steady_clock::now();

    FusedPoint p;
    p.n = n;
    p.t = s.t;
    p.trials = trials;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.trials_per_sec = p.seconds > 0 ? trials / p.seconds : 0.0;
    p.mean_rounds = agg.rounds.mean();
    const double node_rounds = agg.rounds.sum() * static_cast<double>(n);
    p.ns_per_node_round = node_rounds > 0 ? 1e9 * p.seconds / node_rounds : 0.0;
    p.ns_per_trial = trials > 0 ? 1e9 * p.seconds / trials : 0.0;
    p.speedup = scalar_tps > 0 ? p.trials_per_sec / scalar_tps : 0.0;
    p.exhausted = agg.cap_exhausted + agg.watchdog_timeouts;
    p.faulted = agg.faulted;
    return p;
}

double measure_fused_overhead() {
    sim::Scenario s;
    s.n = 64;
    s.t = 21;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::None;
    s.inputs = sim::InputPattern::AllOne;  // unanimous: decides in the first phase
    s.use_fused = true;
    const Count trials = 64 * 128;
    (void)sim::run_trials(s, 0xE10, 64, sim::ExecutorConfig{1, 64});  // warm-up
    const auto start = std::chrono::steady_clock::now();
    (void)sim::run_trials(s, 0xE10, trials, sim::ExecutorConfig{1, trials});
    const auto stop = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(stop - start).count();
    return secs > 0 ? 1e9 * secs / trials : 0.0;
}

// ---- tally-kernel microbench (the roofline evidence) ----
//
// One synthetic all-honest round, rebuilt over and over in each tally mode.
// Both modes sweep the same input — n Message cells plus the n-byte state
// plane per rebuild — so bytes/sec is directly comparable, and the packed
// mode's margin over scalar (and its distance from the streaming memory-
// bandwidth reference below) is the reproducible form of the "runs at
// memory bandwidth" claim.

struct KernelPoint {
    NodeId n = 0;
    double scalar_gbs = 0.0;
    double packed_gbs = 0.0;
    double speedup = 0.0;
};

KernelPoint measure_tally_kernel(NodeId n) {
    net::RoundBuffer buf;
    buf.reset(n);
    buf.begin_round();
    // Lockstep round shape: every live sender shares one (kind, phase)
    // signature (what the skeleton protocol's rounds look like), payload
    // bits random — the branchy case the packed kernels exist to flatten.
    Xoshiro256 rng(0xE10ull * n);
    for (NodeId v = 0; v < n; ++v) {
        net::Message m;
        m.kind = net::MsgKind::Vote1;
        m.phase = 1;
        m.val = static_cast<Bit>(rng.below(2));
        m.flag = static_cast<std::uint8_t>(rng.below(2));
        m.coin = static_cast<CoinSign>(static_cast<int>(rng.below(3)) - 1);
        buf.set_broadcast(v, m);
    }

    net::RoundTally tally;
    const double bytes_per_rebuild =
        static_cast<double>(n) * (sizeof(net::Message) + 1);
    const auto time_mode = [&](bool packed) {
        const Count reps = std::max<Count>(5'000'000 / n, 50);
        tally.rebuild(buf, packed, nullptr);  // warm-up (bucket storage etc.)
        std::uint64_t sink = 0;
        const auto start = std::chrono::steady_clock::now();
        for (Count r = 0; r < reps; ++r) {
            tally.rebuild(buf, packed, nullptr);
            sink += tally.bucket(0).total;
        }
        const auto stop = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(sink);
        const double secs = std::chrono::duration<double>(stop - start).count();
        return secs > 0 ? bytes_per_rebuild * static_cast<double>(reps) / secs / 1e9
                        : 0.0;
    };

    KernelPoint k;
    k.n = n;
    k.scalar_gbs = time_mode(false);
    k.packed_gbs = time_mode(true);
    k.speedup = k.scalar_gbs > 0 ? k.packed_gbs / k.scalar_gbs : 0.0;
    return k;
}

/// Streaming read bandwidth over a 64 MiB uint64 buffer — the roofline the
/// packed kernels are compared against.
double measure_mem_bandwidth() {
    std::vector<std::uint64_t> a(std::size_t{1} << 23, 0x0101010101010101ull);
    std::uint64_t sink = 0;
    for (const std::uint64_t x : a) sink += x;  // warm-up / fault-in
    const int passes = 4;
    const auto start = std::chrono::steady_clock::now();
    for (int p = 0; p < passes; ++p)
        for (const std::uint64_t x : a) sink += x;
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sink);
    const double secs = std::chrono::duration<double>(stop - start).count();
    const double bytes = static_cast<double>(a.size()) * sizeof(std::uint64_t) * passes;
    return secs > 0 ? bytes / secs / 1e9 : 0.0;
}

void throughput(const Cli& cli) {
    const auto base = static_cast<Count>(cli.get_int("bench_trials", 2000));
    const std::string json_path = cli.get("bench_json", "BENCH_engine.json");
    const bool use_batch = cli.get_bool("batch", true);  // --batch=on|off

    Table tab("E10: delivery-plane throughput (ours + static, split inputs, 1 thread)");
    tab.set_header({"n", "t", "trials", "trials/sec", "ns/node-round"});
    std::vector<ThroughputPoint> points;
    const std::pair<NodeId, Count> cells[] = {
        {64, std::max<Count>(4 * base, 10)},
        {256, std::max<Count>(base, 10)},
        {1024, std::max<Count>(base / 5, 10)},
        {4096, std::max<Count>(base / 20, 5)},
    };
    for (const auto& [n, trials] : cells) {
        const ThroughputPoint p = measure_throughput(n, trials, use_batch);
        points.push_back(p);
        tab.add_row({Table::num(std::uint64_t{p.n}), Table::num(std::uint64_t{p.t}),
                     Table::num(std::uint64_t{p.trials}), Table::num(p.trials_per_sec, 0),
                     Table::num(p.ns_per_node_round, 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, tab, "e10_engine_throughput");

    // Intra-trial sharding: the same huge-n cells, one trial at a time split
    // across shard workers. The trial pool default is pinned to 1 for the
    // measurement so the nested-parallelism clamp hands the whole machine to
    // the intra workers (the single-huge-trial use case). On a 1-core host
    // this degrades to the serial loop and speedup reads ~1.0x — the number
    // is honest, not padded.
    const auto shards = static_cast<unsigned>(cli.get_int("shards", 4));
    const unsigned saved_threads = sim::default_threads();
    sim::set_default_threads(1);
    const unsigned workers = std::min(shards, sim::intra_worker_cap(1));
    Table stab("E10: intra-trial sharding (" + std::to_string(shards) +
               " shards, " + std::to_string(workers) + " workers)");
    stab.set_header({"n", "trials", "trials/sec", "ns/node-round", "speedup"});
    std::vector<std::pair<ThroughputPoint, double>> sharded;
    for (const auto& [n, trials] : cells) {
        if (n < 1024) continue;  // sharding targets the huge-n cells
        const ThroughputPoint p = measure_throughput(n, trials, use_batch, shards);
        double serial_tps = 0.0;
        for (const ThroughputPoint& q : points)
            if (q.n == n) serial_tps = q.trials_per_sec;
        const double speedup = serial_tps > 0 ? p.trials_per_sec / serial_tps : 0.0;
        sharded.emplace_back(p, speedup);
        stab.add_row({Table::num(std::uint64_t{p.n}),
                      Table::num(std::uint64_t{p.trials}),
                      Table::num(p.trials_per_sec, 0),
                      Table::num(p.ns_per_node_round, 1), Table::num(speedup, 2)});
    }
    sim::set_default_threads(saved_threads);
    stab.print(std::cout);
    benchutil::maybe_write_csv(cli, stab, "e10_engine_sharded");

    // Packed-vs-scalar tally kernel bandwidth next to the streaming roofline.
    const double mem_bw = measure_mem_bandwidth();
    Table ktab("E10: tally kernel bandwidth (stream reference " +
               Table::num(mem_bw, 1) + " GB/s)");
    ktab.set_header({"n", "scalar GB/s", "packed GB/s", "speedup"});
    std::vector<KernelPoint> kernels;
    for (const NodeId n : {NodeId{1024}, NodeId{4096}, NodeId{16384}}) {
        const KernelPoint k = measure_tally_kernel(n);
        kernels.push_back(k);
        ktab.add_row({Table::num(std::uint64_t{k.n}), Table::num(k.scalar_gbs, 2),
                      Table::num(k.packed_gbs, 2), Table::num(k.speedup, 2)});
    }
    ktab.print(std::cout);
    benchutil::maybe_write_csv(cli, ktab, "e10_tally_kernels");

    // Sparse delivery plane: direct sampled-view trials up to n=2^20, one
    // block per stream version. Counter (the batched default) is the gated
    // block; chain rides along so the frozen v1 derivation keeps a recorded
    // cost. The n=2^20 cell runs several trials — a single ~1 s trial made
    // the committed baseline noisy enough to trip the regression gate.
    const auto degree = static_cast<Count>(cli.get_int("sample_degree", 64));
    const std::pair<NodeId, Count> sparse_cells[] = {
        {1 << 14, std::max<Count>(base / 100, 5)},
        {1 << 17, std::max<Count>(base / 500, 2)},
        {1 << 20, std::max<Count>(base / 500, 3)},
    };
    std::vector<SparsePoint> sparse_points;
    std::vector<SparsePoint> sparse_chain_points;
    for (const bool chain : {false, true}) {
        auto& pts = chain ? sparse_chain_points : sparse_points;
        Table sptab(std::string("E10: sparse delivery plane (stream ") +
                    (chain ? "chain" : "counter") + ", degree " +
                    std::to_string(degree) +
                    ", ours + static q=256, split inputs, 1 thread)");
        sptab.set_header({"n", "t", "trials", "trials/sec", "ns/node-round",
                          "ns/probe", "bytes/node-round"});
        for (const auto& [n, trials] : sparse_cells) {
            const SparsePoint p =
                measure_sparse(n, trials, degree,
                               chain ? net::SparseStream::Chain
                                     : net::SparseStream::Counter);
            pts.push_back(p);
            sptab.add_row({Table::num(std::uint64_t{p.n}),
                           Table::num(std::uint64_t{p.t}),
                           Table::num(std::uint64_t{p.trials}),
                           Table::num(p.trials_per_sec, 2),
                           Table::num(p.ns_per_node_round, 1),
                           Table::num(p.ns_per_probe, 2),
                           Table::num(p.bytes_per_node_round, 1)});
        }
        sptab.print(std::cout);
        benchutil::maybe_write_csv(
            cli, sptab, chain ? "e10_sparse_plane_chain" : "e10_sparse_plane");
    }

    // Fused trial plane: the small-n cells where 64-lane word parallelism
    // pays; trial counts rounded to whole 64-lane blocks.
    Table ftab("E10: fused trial plane (64 lanes/word, ours + static, "
               "split inputs, 1 thread)");
    ftab.set_header({"n", "t", "trials", "trials/sec", "ns/node-round",
                     "ns/trial", "speedup vs scalar"});
    std::vector<FusedPoint> fused_points;
    for (const auto& [n, trials] : cells) {
        if (n > 1024) continue;  // beyond the small-n regime fused targets
        const Count blocks = std::max<Count>(trials / 64, 1) * 64;
        double scalar_tps = 0.0;
        for (const ThroughputPoint& q : points)
            if (q.n == n) scalar_tps = q.trials_per_sec;
        const FusedPoint p = measure_fused(n, blocks, scalar_tps);
        fused_points.push_back(p);
        ftab.add_row({Table::num(std::uint64_t{p.n}), Table::num(std::uint64_t{p.t}),
                      Table::num(std::uint64_t{p.trials}),
                      Table::num(p.trials_per_sec, 0),
                      Table::num(p.ns_per_node_round, 2),
                      Table::num(p.ns_per_trial, 0), Table::num(p.speedup, 2)});
    }
    ftab.print(std::cout);
    benchutil::maybe_write_csv(cli, ftab, "e10_fused_plane");
    const double fused_overhead = measure_fused_overhead();
    std::printf("fused per-trial overhead (all-one early decide): %.0f ns/trial\n",
                fused_overhead);

    // Sparse flatness: once probing is batched, ns/node-round must not grow
    // with n across 2^14..2^20 (counter stream); CI gates the max/min ratio.
    double sp_min = sparse_points.front().ns_per_node_round;
    double sp_max = sp_min;
    for (const SparsePoint& p : sparse_points) {
        sp_min = std::min(sp_min, p.ns_per_node_round);
        sp_max = std::max(sp_max, p.ns_per_node_round);
    }
    const double sp_ratio = sp_min > 0 ? sp_max / sp_min : 0.0;
    std::printf("sparse ns/node-round scaling: min %.1f, max %.1f, max/min %.2fx\n",
                sp_min, sp_max, sp_ratio);

    // Scaling flatness: per-node-round cost should not grow with n once the
    // plane is batched; CI tracks the max/min ratio, not just throughput.
    double ns_min = points.front().ns_per_node_round;
    double ns_max = ns_min;
    for (const ThroughputPoint& p : points) {
        ns_min = std::min(ns_min, p.ns_per_node_round);
        ns_max = std::max(ns_max, p.ns_per_node_round);
    }
    const double ns_ratio = ns_min > 0 ? ns_max / ns_min : 0.0;
    std::printf("ns/node-round scaling: min %.1f, max %.1f, max/min %.2fx\n", ns_min,
                ns_max, ns_ratio);

    std::ofstream out(json_path);
    if (!out) throw ContractViolation("cannot write " + json_path);
    out << "{\n  \"bench\": \"engine_throughput\",\n"
        << "  \"protocol\": \"ours\",\n  \"adversary\": \"static\",\n"
        << "  \"inputs\": \"split\",\n  \"threads\": 1,\n"
        << "  \"batch\": " << (use_batch ? "true" : "false") << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ThroughputPoint& p = points[i];
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "    {\"n\": %u, \"t\": %u, \"trials\": %u, \"seconds\": %.6f, "
                      "\"trials_per_sec\": %.1f, \"mean_rounds\": %.2f, "
                      "\"ns_per_node_round\": %.2f, \"exhausted\": %u, "
                      "\"faulted\": %u}%s\n",
                      p.n, p.t, p.trials, p.seconds, p.trials_per_sec, p.mean_rounds,
                      p.ns_per_node_round, p.exhausted, p.faulted,
                      i + 1 < points.size() ? "," : "");
        out << buf;
    }
    {
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "  ],\n  \"sharded\": {\"shards\": %u, \"workers\": %u, "
                      "\"entries\": [\n",
                      shards, workers);
        out << buf;
    }
    for (std::size_t i = 0; i < sharded.size(); ++i) {
        const auto& [p, speedup] = sharded[i];
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "    {\"n\": %u, \"trials\": %u, \"seconds\": %.6f, "
                      "\"trials_per_sec\": %.1f, \"ns_per_node_round\": %.2f, "
                      "\"speedup_vs_serial\": %.3f, \"exhausted\": %u, "
                      "\"faulted\": %u}%s\n",
                      p.n, p.trials, p.seconds, p.trials_per_sec,
                      p.ns_per_node_round, speedup, p.exhausted, p.faulted,
                      i + 1 < sharded.size() ? "," : "");
        out << buf;
    }
    {
        char buf[120];
        std::snprintf(buf, sizeof buf,
                      "  ]},\n  \"tally_kernels\": {\"mem_bw_gb_per_sec\": %.2f, "
                      "\"entries\": [\n",
                      mem_bw);
        out << buf;
    }
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelPoint& k = kernels[i];
        char buf[240];
        std::snprintf(buf, sizeof buf,
                      "    {\"n\": %u, \"scalar_gb_per_sec\": %.3f, "
                      "\"packed_gb_per_sec\": %.3f, \"speedup\": %.3f}%s\n",
                      k.n, k.scalar_gbs, k.packed_gbs, k.speedup,
                      i + 1 < kernels.size() ? "," : "");
        out << buf;
    }
    const auto write_sparse_entries = [&out](const std::vector<SparsePoint>& pts) {
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const SparsePoint& p = pts[i];
            char buf[360];
            std::snprintf(
                buf, sizeof buf,
                "    {\"n\": %u, \"t\": %u, \"trials\": %u, \"seconds\": %.6f, "
                "\"trials_per_sec\": %.3f, \"mean_rounds\": %.2f, "
                "\"ns_per_node_round\": %.2f, \"ns_per_probe\": %.3f, "
                "\"bytes_per_node_round\": %.2f, \"exhausted\": %u, "
                "\"faulted\": %u}%s\n",
                p.n, p.t, p.trials, p.seconds, p.trials_per_sec, p.mean_rounds,
                p.ns_per_node_round, p.ns_per_probe, p.bytes_per_node_round,
                p.exhausted, p.faulted, i + 1 < pts.size() ? "," : "");
            out << buf;
        }
    };
    {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "  ]},\n  \"sparse\": {\"degree\": %u, "
                      "\"stream\": \"counter\", \"entries\": [\n",
                      degree);
        out << buf;
    }
    write_sparse_entries(sparse_points);
    {
        char buf[240];
        std::snprintf(buf, sizeof buf,
                      "  ], \"ns_per_node_round_max_over_min\": %.3f},\n"
                      "  \"sparse_chain\": {\"degree\": %u, "
                      "\"stream\": \"chain\", \"entries\": [\n",
                      sp_ratio, degree);
        out << buf;
    }
    write_sparse_entries(sparse_chain_points);
    {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "  ]},\n  \"fused\": {\"lanes\": 64, "
                      "\"ns_per_trial_overhead\": %.2f, \"entries\": [\n",
                      fused_overhead);
        out << buf;
    }
    for (std::size_t i = 0; i < fused_points.size(); ++i) {
        const FusedPoint& p = fused_points[i];
        char buf[360];
        std::snprintf(buf, sizeof buf,
                      "    {\"n\": %u, \"t\": %u, \"trials\": %u, \"seconds\": %.6f, "
                      "\"trials_per_sec\": %.1f, \"mean_rounds\": %.2f, "
                      "\"ns_per_node_round\": %.2f, \"ns_per_trial\": %.2f, "
                      "\"speedup_vs_scalar\": %.3f, \"exhausted\": %u, "
                      "\"faulted\": %u}%s\n",
                      p.n, p.t, p.trials, p.seconds, p.trials_per_sec, p.mean_rounds,
                      p.ns_per_node_round, p.ns_per_trial, p.speedup, p.exhausted,
                      p.faulted, i + 1 < fused_points.size() ? "," : "");
        out << buf;
    }
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  ]},\n  \"scaling\": {\"ns_per_node_round_min\": %.2f, "
                  "\"ns_per_node_round_max\": %.2f, "
                  "\"ns_per_node_round_max_over_min\": %.3f}\n}\n",
                  ns_min, ns_max, ns_ratio);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
}

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 5));
    std::printf("E10: engine throughput (timing entries below); summary table of\n"
                "per-trial work at representative sizes.\n");

    sim::SweepGrid grid;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.adversary = sim::AdversaryKind::WorstCase;
    grid.base.inputs = sim::InputPattern::Split;
    grid.ns = {64, 256, 512};
    grid.t_of_n = [](NodeId n) { return static_cast<Count>((n - 1) / 3); };

    Table tab("E10: full-fidelity trial cost (worst-case adversary, split inputs)");
    tab.set_header({"n", "t", "mean rounds", "mean msgs/trial"});
    const auto outcomes = sim::run_sweep(grid, 0xE10, trials);
    for (const auto& o : outcomes) {
        tab.add_row({Table::num(std::uint64_t{o.row.scenario.n}),
                     Table::num(std::uint64_t{o.row.scenario.t}),
                     Table::num(o.agg.rounds.mean(), 1),
                     Table::num(o.agg.messages.mean(), 0)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e10_engine_cost");
}

void BM_engine_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = static_cast<NodeId>(state.range(0));
    s.t = (s.n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    std::uint64_t msgs = 0;
    for (auto _ : state) {
        const auto r = sim::run_trial(s, seed++);
        msgs += r.metrics.honest_messages;
        benchmark::DoNotOptimize(r);
    }
    state.counters["msgs/s"] =
        benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_engine_trial)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_macro_vs_micro(benchmark::State& state) {
    sim::MacroScenario m;
    m.n = static_cast<std::uint64_t>(state.range(0));
    m.t = m.n / 4;
    m.q = m.t;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_macro_trial(m, seed++));
}
BENCHMARK(BM_macro_vs_micro)->Arg(256)->Arg(1 << 14)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    adba::benchutil::init_intra_threads(cli);
    experiment(cli);
    throughput(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
