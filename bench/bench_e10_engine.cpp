// E10 — simulator substrate throughput: the cost model behind every other
// experiment. Not a paper claim; reported so readers can size their own
// sweeps (messages delivered per second, trial latency vs n).
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "sim/macro.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 5));
    std::printf("E10: engine throughput (timing entries below); summary table of\n"
                "per-trial work at representative sizes.\n");

    sim::SweepGrid grid;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.adversary = sim::AdversaryKind::WorstCase;
    grid.base.inputs = sim::InputPattern::Split;
    grid.ns = {64, 256, 512};
    grid.t_of_n = [](NodeId n) { return static_cast<Count>((n - 1) / 3); };

    Table tab("E10: full-fidelity trial cost (worst-case adversary, split inputs)");
    tab.set_header({"n", "t", "mean rounds", "mean msgs/trial"});
    for (const auto& o : sim::run_sweep(grid, 0xE10, trials)) {
        tab.add_row({Table::num(std::uint64_t{o.row.scenario.n}),
                     Table::num(std::uint64_t{o.row.scenario.t}),
                     Table::num(o.agg.rounds.mean(), 1),
                     Table::num(o.agg.messages.mean(), 0)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, tab, "e10_engine_cost");
}

void BM_engine_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = static_cast<NodeId>(state.range(0));
    s.t = (s.n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    std::uint64_t msgs = 0;
    for (auto _ : state) {
        const auto r = sim::run_trial(s, seed++);
        msgs += r.metrics.honest_messages;
        benchmark::DoNotOptimize(r);
    }
    state.counters["msgs/s"] =
        benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_engine_trial)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_macro_vs_micro(benchmark::State& state) {
    sim::MacroScenario m;
    m.n = static_cast<std::uint64_t>(state.range(0));
    m.t = m.n / 4;
    m.q = m.t;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_macro_trial(m, seed++));
}
BENCHMARK(BM_macro_vs_micro)->Arg(256)->Arg(1 << 14)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
