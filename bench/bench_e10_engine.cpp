// E10 — simulator substrate throughput: the cost model behind every other
// experiment. Not a paper claim; reported so readers can size their own
// sweeps (messages delivered per second, trial latency vs n).
//
// The `throughput` section is the repo's perf trajectory point: single-
// thread trials/sec and ns per node-round for the skeleton protocol against
// the static adversary at n in {64, 256, 1024}, dumped to BENCH_engine.json
// (--bench_json=PATH; --bench_trials scales the n=256 trial count) so CI
// can archive the numbers per commit.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/common.hpp"
#include "sim/macro.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

struct ThroughputPoint {
    NodeId n = 0;
    Count t = 0;
    Count trials = 0;
    double seconds = 0.0;
    double trials_per_sec = 0.0;
    double mean_rounds = 0.0;
    double ns_per_node_round = 0.0;
};

ThroughputPoint measure_throughput(NodeId n, Count trials, bool use_batch) {
    sim::Scenario s;
    s.n = n;
    s.t = (n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::Static;
    s.inputs = sim::InputPattern::Split;
    s.use_batch = use_batch;

    const sim::ExecutorConfig serial{1, 0};  // the canonical single-thread metric
    (void)sim::run_trials(s, 0xE10, std::max<Count>(trials / 10, 2), serial);  // warm-up

    const auto start = std::chrono::steady_clock::now();
    const sim::Aggregate agg = sim::run_trials(s, 0xE10, trials, serial);
    const auto stop = std::chrono::steady_clock::now();

    ThroughputPoint p;
    p.n = n;
    p.t = s.t;
    p.trials = trials;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.trials_per_sec = p.seconds > 0 ? trials / p.seconds : 0.0;
    p.mean_rounds = agg.rounds.mean();
    const double node_rounds = agg.rounds.sum() * static_cast<double>(n);
    p.ns_per_node_round = node_rounds > 0 ? 1e9 * p.seconds / node_rounds : 0.0;
    return p;
}

void throughput(const Cli& cli) {
    const auto base = static_cast<Count>(cli.get_int("bench_trials", 2000));
    const std::string json_path = cli.get("bench_json", "BENCH_engine.json");
    const bool use_batch = cli.get_bool("batch", true);  // --batch=on|off

    Table tab("E10: delivery-plane throughput (ours + static, split inputs, 1 thread)");
    tab.set_header({"n", "t", "trials", "trials/sec", "ns/node-round"});
    std::vector<ThroughputPoint> points;
    const std::pair<NodeId, Count> cells[] = {
        {64, std::max<Count>(4 * base, 10)},
        {256, std::max<Count>(base, 10)},
        {1024, std::max<Count>(base / 5, 10)},
        {4096, std::max<Count>(base / 20, 5)},
    };
    for (const auto& [n, trials] : cells) {
        const ThroughputPoint p = measure_throughput(n, trials, use_batch);
        points.push_back(p);
        tab.add_row({Table::num(std::uint64_t{p.n}), Table::num(std::uint64_t{p.t}),
                     Table::num(std::uint64_t{p.trials}), Table::num(p.trials_per_sec, 0),
                     Table::num(p.ns_per_node_round, 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, tab, "e10_engine_throughput");

    // Scaling flatness: per-node-round cost should not grow with n once the
    // plane is batched; CI tracks the max/min ratio, not just throughput.
    double ns_min = points.front().ns_per_node_round;
    double ns_max = ns_min;
    for (const ThroughputPoint& p : points) {
        ns_min = std::min(ns_min, p.ns_per_node_round);
        ns_max = std::max(ns_max, p.ns_per_node_round);
    }
    const double ns_ratio = ns_min > 0 ? ns_max / ns_min : 0.0;
    std::printf("ns/node-round scaling: min %.1f, max %.1f, max/min %.2fx\n", ns_min,
                ns_max, ns_ratio);

    std::ofstream out(json_path);
    if (!out) throw ContractViolation("cannot write " + json_path);
    out << "{\n  \"bench\": \"engine_throughput\",\n"
        << "  \"protocol\": \"ours\",\n  \"adversary\": \"static\",\n"
        << "  \"inputs\": \"split\",\n  \"threads\": 1,\n"
        << "  \"batch\": " << (use_batch ? "true" : "false") << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ThroughputPoint& p = points[i];
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "    {\"n\": %u, \"t\": %u, \"trials\": %u, \"seconds\": %.6f, "
                      "\"trials_per_sec\": %.1f, \"mean_rounds\": %.2f, "
                      "\"ns_per_node_round\": %.2f}%s\n",
                      p.n, p.t, p.trials, p.seconds, p.trials_per_sec, p.mean_rounds,
                      p.ns_per_node_round, i + 1 < points.size() ? "," : "");
        out << buf;
    }
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  ],\n  \"scaling\": {\"ns_per_node_round_min\": %.2f, "
                  "\"ns_per_node_round_max\": %.2f, "
                  "\"ns_per_node_round_max_over_min\": %.3f}\n}\n",
                  ns_min, ns_max, ns_ratio);
    out << buf;
    std::printf("wrote %s\n", json_path.c_str());
}

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 5));
    std::printf("E10: engine throughput (timing entries below); summary table of\n"
                "per-trial work at representative sizes.\n");

    sim::SweepGrid grid;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.adversary = sim::AdversaryKind::WorstCase;
    grid.base.inputs = sim::InputPattern::Split;
    grid.ns = {64, 256, 512};
    grid.t_of_n = [](NodeId n) { return static_cast<Count>((n - 1) / 3); };

    Table tab("E10: full-fidelity trial cost (worst-case adversary, split inputs)");
    tab.set_header({"n", "t", "mean rounds", "mean msgs/trial"});
    const auto outcomes = sim::run_sweep(grid, 0xE10, trials);
    for (const auto& o : outcomes) {
        tab.add_row({Table::num(std::uint64_t{o.row.scenario.n}),
                     Table::num(std::uint64_t{o.row.scenario.t}),
                     Table::num(o.agg.rounds.mean(), 1),
                     Table::num(o.agg.messages.mean(), 0)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e10_engine_cost");
}

void BM_engine_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = static_cast<NodeId>(state.range(0));
    s.t = (s.n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    std::uint64_t msgs = 0;
    for (auto _ : state) {
        const auto r = sim::run_trial(s, seed++);
        msgs += r.metrics.honest_messages;
        benchmark::DoNotOptimize(r);
    }
    state.counters["msgs/s"] =
        benchmark::Counter(static_cast<double>(msgs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_engine_trial)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_macro_vs_micro(benchmark::State& state) {
    sim::MacroScenario m;
    m.n = static_cast<std::uint64_t>(state.range(0));
    m.t = m.n / 4;
    m.q = m.t;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_macro_trial(m, seed++));
}
BENCHMARK(BM_macro_vs_micro)->Arg(256)->Arg(1 << 14)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    throughput(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
