// E7 — the Las Vegas variant (paper §3.2 end): cycle committees instead of
// stopping after c phases; agreement is then ALWAYS reached, in
// O(min(t^2 log n / n, t / log n)) expected rounds, driven by the same
// early-termination machinery.
//
// Regenerates the termination-round distribution (mean + quantiles) and
// verifies the always-agree property over many adversarial trials.
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 128));
    const auto trials = static_cast<Count>(cli.get_int("trials", 60));
    std::printf("E7: Las Vegas Algorithm 3 (n=%u, worst-case adversary, split inputs, "
                "%u trials).\n", n, trials);

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.protocol = sim::ProtocolKind::OursLasVegas;
    grid.base.adversary = sim::AdversaryKind::WorstCase;
    grid.base.inputs = sim::InputPattern::Split;
    grid.ts = {5, 10, 20, 30, static_cast<Count>((n - 1) / 3)};

    Table tab("E7: termination-round distribution of the Las Vegas variant");
    tab.set_header({"t", "agree %", "halted %", "mean", "p50", "p90", "p99", "max",
                    "thy E[rounds]"});
    const auto outcomes = sim::run_sweep(grid, 0xE7, trials);
    for (const auto& o : outcomes) {
        const auto& agg = o.agg;
        const Count t = o.row.scenario.t;
        tab.add_row({Table::num(std::uint64_t{t}),
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     Table::num(100.0 * (agg.trials - agg.not_halted) / agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1),
                     Table::num(agg.rounds.quantile(0.5), 0),
                     Table::num(agg.rounds.quantile(0.9), 0),
                     Table::num(agg.rounds.quantile(0.99), 0),
                     Table::num(agg.rounds.max(), 0),
                     Table::num(an::rounds_ours(double(n), double(t)), 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e7_las_vegas");
    std::printf(
        "Shape check vs paper: 100%% agreement and termination at every t (the\n"
        "Las Vegas guarantee); the distribution is tight around the budget-bound\n"
        "mean — once the adversary's t corruptions are spent, the very next\n"
        "committee coin ends the run, so the tail is short.\n");
}

void BM_las_vegas_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = 128;
    s.t = 30;
    s.protocol = sim::ProtocolKind::OursLasVegas;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_las_vegas_trial);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
