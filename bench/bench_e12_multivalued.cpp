// E12 — the multi-valued extension (Turpin-Coan 1984 over Algorithm 3):
// agreement over an arbitrary 32-bit domain at the cost of two prelude
// rounds, with t < n/3 preserved. Not a claim of the paper — it is the
// natural "first feature request" for a BA library (DESIGN.md extension
// list) and doubles as an end-to-end stress of Algorithm 3 when embedded.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 96));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    std::printf("E12: multi-valued agreement (Turpin-Coan over Algorithm 3), n=%u, "
                "t=%u, %u trials/cell.\n", n, t, trials);

    sim::MvSweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.inputs = {sim::MvInputPattern::AllSame, sim::MvInputPattern::TwoBlocks,
                   sim::MvInputPattern::Distinct, sim::MvInputPattern::RandomTiny,
                   sim::MvInputPattern::NearQuorum};
    grid.adversaries = {sim::MvAdversaryKind::None, sim::MvAdversaryKind::WorstCaseInner,
                        sim::MvAdversaryKind::PreludePlusWorstCase};

    Table tab("E12: multi-valued agreement across inputs x adversaries");
    tab.set_header({"inputs", "adversary", "agree %", "validity", "real-value %",
                    "mean rounds"});
    const auto outcomes = sim::run_mv_sweep(grid, 0xE12, trials);
    for (const auto& o : outcomes) {
        const auto& agg = o.agg;
        tab.add_row({sim::to_string(o.row.scenario.inputs),
                     sim::to_string(o.row.scenario.adversary),
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     agg.validity_failures == 0 ? "ok" : "VIOLATED",
                     Table::num(100.0 * agg.decided_real / agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e12_multivalued");

    // Overhead vs the plain binary protocol on the matching instance: a
    // unanimous binary run locks immediately, as does the unanimous
    // multi-valued run — the difference is exactly the 2 prelude rounds.
    sim::Scenario binary;
    binary.n = n;
    binary.t = t;
    binary.protocol = sim::ProtocolKind::Ours;
    binary.adversary = sim::AdversaryKind::WorstCase;
    binary.inputs = sim::InputPattern::AllOne;
    const auto bin_agg = sim::run_trials(binary, 0xE12B, trials);
    sim::MvScenario mv;
    mv.n = n;
    mv.t = t;
    mv.inputs = sim::MvInputPattern::AllSame;
    mv.adversary = sim::MvAdversaryKind::WorstCaseInner;
    const auto mv_agg = sim::run_mv_trials(mv, 0xE12B, trials);
    std::printf(
        "Reduction overhead (unanimous instance): binary %.1f rounds -> "
        "multi-valued %.1f rounds (the 2 prelude rounds).\n"
        "Note the Turpin-Coan design: unless honest inputs sit near the n-t\n"
        "quorum boundary, the derived binary instance is unanimous and the\n"
        "inner protocol locks in one phase — the adversary's only leverage is\n"
        "the boundary band, which the prelude attack above targets.\n",
        bin_agg.rounds.mean(), mv_agg.rounds.mean());
}

void BM_mv_trial(benchmark::State& state) {
    sim::MvScenario s;
    s.n = 64;
    s.t = 21;
    s.inputs = sim::MvInputPattern::TwoBlocks;
    s.adversary = sim::MvAdversaryKind::WorstCaseInner;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_mv_trial(s, seed++));
}
BENCHMARK(BM_mv_trial);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    adba::benchutil::reject_fused(cli, "the multi-valued (Turpin-Coan) experiments");
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
