// E6 — message complexity: the paper claims
// O(min(n·t^2·log n, n^2·t/log n)) messages (§1.2, §4), an improvement over
// Chor-Coan, still Õ(t) above the Ω(nt) lower bound of Hadzilacos-Halpern.
//
// Every round is a full broadcast (n(n-1) wire messages from live honest
// senders), so message complexity = rounds × n^2 up to halting effects;
// this bench regenerates the measured counts and bits (CONGEST accounting)
// against the formulas.
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto trials = static_cast<Count>(cli.get_int("trials", 15));
    std::printf("E6: communication accounting (worst-case adversary, split inputs, "
                "%u trials).\n", trials);

    sim::SweepGrid grid;
    grid.base.adversary = sim::AdversaryKind::WorstCase;
    grid.base.inputs = sim::InputPattern::Split;
    grid.ns = {64, 128, 256};
    grid.t_of_n = [](NodeId n) { return static_cast<Count>((n - 1) / 3); };
    grid.protocols = {sim::ProtocolKind::Ours, sim::ProtocolKind::ChorCoanRushing};

    Table tab("E6: measured messages/bits vs theory");
    tab.set_header({"n", "t", "protocol", "mean rounds", "mean msgs", "mean Mbits",
                    "thy msgs n^2*R", "thy LB n*t"});
    const auto outcomes = sim::run_sweep(grid, 0xE6, trials);
    for (const auto& o : outcomes) {
        const auto& s = o.row.scenario;
        const double r = o.agg.rounds.mean();
        tab.add_row({Table::num(std::uint64_t{s.n}), Table::num(std::uint64_t{s.t}),
                     sim::to_string(s.protocol), Table::num(r, 1),
                     Table::num(o.agg.messages.mean(), 0),
                     Table::num(o.agg.bits.mean() / 1e6, 2),
                     Table::num(double(s.n) * s.n * r, 0),
                     Table::num(double(s.n) * s.t, 0)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e6_messages");
    std::printf(
        "Shape check vs paper: measured messages sit just under n^2 x rounds\n"
        "(halting nodes stop broadcasting), i.e. message complexity is rounds-\n"
        "driven exactly as §1.2 computes it; the Hadzilacos-Halpern Ω(nt) lower\n"
        "bound is ~Õ(t) below, matching the paper's §4 gap discussion.\n");
}

void BM_message_accounting(benchmark::State& state) {
    sim::Scenario s;
    s.n = static_cast<NodeId>(state.range(0));
    s.t = (s.n - 1) / 3;
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::WorstCase;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_message_accounting)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
