// E9 — design ablations called out in DESIGN.md:
//   (a) the committee-count constant α: the paper's analysis wants
//       α - 4·sqrt(α) >= γ (α ≈ 18 for γ = 1); how small can α really be?
//       This regenerates the measured w.h.p. failure boundary that fixed
//       our default α = 4 (see core/params.hpp).
//   (b) the validity fast path (Lemma 2): unanimous inputs lock in O(1)
//       phases under every adversary, independent of α.
//   (c) the γ phase floor at tiny t.
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "core/params.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 64));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 60));
    std::printf("E9: committee-sizing ablation (n=%u, t=%u — the hardest cell — "
                "%u trials).\n", n, t, trials);

    sim::SweepGrid grid_a;
    grid_a.base.n = n;
    grid_a.base.t = t;
    grid_a.base.protocol = sim::ProtocolKind::Ours;
    grid_a.base.adversary = sim::AdversaryKind::WorstCase;
    grid_a.base.inputs = sim::InputPattern::Split;
    for (double alpha : {1.0, 2.0, 4.0, 8.0, 18.0}) {
        core::Tuning tune;
        tune.alpha = alpha;
        grid_a.tunings.push_back(tune);
    }

    Table tab("E9a: alpha sweep at maximal t (worst-case adversary, split inputs)");
    tab.set_header({"alpha", "phases c", "committee s", "agree %", "mean rounds",
                    "analysis needs"});
    const auto outcomes_a = sim::run_sweep(grid_a, 0xE9A, trials);
    for (const auto& o : outcomes_a) {
        const double alpha = o.row.scenario.tuning.alpha;
        const auto params = core::AgreementParams::compute(n, t, o.row.scenario.tuning);
        const auto& agg = o.agg;
        tab.add_row({Table::num(alpha, 1), Table::num(std::uint64_t{params.phases}),
                     Table::num(std::uint64_t{params.schedule.block}),
                     Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                    agg.trials, 1),
                     Table::num(agg.rounds.mean(), 1),
                     alpha >= 18.0 ? "alpha-4*sqrt(alpha)>=1 holds" : "below paper's constant"});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes_a),
                               "e9a_alpha_sweep");

    sim::SweepGrid grid_b;
    grid_b.base.n = n;
    grid_b.base.t = t;
    grid_b.base.protocol = sim::ProtocolKind::Ours;
    grid_b.base.inputs = sim::InputPattern::AllOne;
    grid_b.adversaries = {sim::AdversaryKind::WorstCase, sim::AdversaryKind::SplitVote,
                          sim::AdversaryKind::CrashTargetedCoin, sim::AdversaryKind::Chaos};

    Table tab2("E9b: validity fast path (Lemma 2) — unanimous inputs, any adversary");
    tab2.set_header({"adversary", "agree %", "validity", "mean rounds"});
    const auto outcomes_b = sim::run_sweep(grid_b, 0xE9B, trials / 2);
    for (const auto& o : outcomes_b) {
        const auto& agg = o.agg;
        tab2.add_row({sim::to_string(o.row.scenario.adversary),
                      Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                     agg.trials, 1),
                      agg.validity_failures == 0 ? "ok" : "VIOLATED",
                      Table::num(agg.rounds.mean(), 1)});
    }
    tab2.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab2.title(), outcomes_b),
                               "e9b_validity_fast_path");

    sim::SweepGrid grid_c;
    grid_c.base.n = n;
    grid_c.base.t = 1;
    grid_c.base.protocol = sim::ProtocolKind::Ours;
    grid_c.base.adversary = sim::AdversaryKind::WorstCase;
    grid_c.base.inputs = sim::InputPattern::Split;
    for (double gamma : {1.0, 2.0, 4.0}) {
        core::Tuning tune;
        tune.gamma = gamma;
        grid_c.tunings.push_back(tune);
    }

    Table tab3("E9c: gamma phase-floor at tiny t (floor = ceil(gamma*log2 n) phases)");
    tab3.set_header({"gamma", "phases at t=1", "agree %", "mean rounds"});
    const auto outcomes_c = sim::run_sweep(grid_c, 0xE9C, trials / 2);
    for (const auto& o : outcomes_c) {
        const auto params = core::AgreementParams::compute(n, 1, o.row.scenario.tuning);
        const auto& agg = o.agg;
        tab3.add_row({Table::num(o.row.scenario.tuning.gamma, 1),
                      Table::num(std::uint64_t{params.phases}),
                      Table::num(100.0 * (agg.trials - agg.agreement_failures) /
                                     agg.trials, 1),
                      Table::num(agg.rounds.mean(), 1)});
    }
    tab3.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab3.title(), outcomes_c),
                               "e9c_gamma_floor");
    std::printf(
        "Shape check: E9a shows the measured w.h.p. boundary — small alpha gives\n"
        "the adversary enough budget-per-phase to ruin everything at this scale;\n"
        "alpha=4 restores 100%% (our default); the paper's alpha=18 is safe but\n"
        "pays more phases. E9b: validity never depends on alpha (Lemma 2 is\n"
        "deterministic). E9c: the floor only matters for the failure budget, not\n"
        "measured rounds (early termination).\n");
}

void BM_params_compute(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::AgreementParams::compute(1 << 16, 20000));
    }
}
BENCHMARK(BM_params_compute);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
