// E13 — lower-bound witness (Theorem 1, Bar-Joseph & Ben-Or): the
// Ω(t/sqrt(n log n)) bound holds already for adaptive rushing CRASH faults.
// Our targeted-crash adversary is that construction operationalized: it
// drags each committee's flip sum across the >=0 boundary with ~|S|+1
// mid-broadcast crashes per ruined phase.
//
// Measured: rounds vs crash budget q for Algorithm 3 under crash faults
// only, against the Byzantine worst case and the BJBO curve. Crash ruin
// costs ~2x the Byzantine ruin (a crash removes a flip; a corruption
// removes a flip AND adds an equivocator), and some committees are
// crash-immune (unanimous flips behind the tie rule) — both visible below.
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 256));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 25));
    std::printf("E13: crash-fault lower-bound witness on Algorithm 3 (n=%u, budget "
                "t=%u, %u trials).\n", n, t, trials);

    sim::SweepGrid grid;
    grid.base.n = n;
    grid.base.t = t;
    grid.base.protocol = sim::ProtocolKind::Ours;
    grid.base.inputs = sim::InputPattern::Split;
    grid.qs = {0, 5, 10, 20, 40, t};
    grid.adversaries = {sim::AdversaryKind::CrashTargetedCoin,
                        sim::AdversaryKind::WorstCase};
    grid.filter = [t](const sim::Scenario& s) { return s.q.value_or(t) <= t; };
    const auto outcomes = sim::run_sweep(grid, 0xE13, trials);

    // Pair each q's crash row with its Byzantine row by scenario identity.
    auto mean_of = [&](Count q, sim::AdversaryKind kind) {
        for (const auto& o : outcomes)
            if (*o.row.scenario.q == q && o.row.scenario.adversary == kind)
                return o.agg.rounds.mean();
        ADBA_ENSURES_MSG(false, "missing sweep cell for q=" + std::to_string(q));
        return 0.0;
    };

    Table tab("E13: rounds under adaptive crash vs Byzantine worst case");
    tab.set_header({"q", "crash rounds", "byzantine rounds", "crash/byz",
                    "BJBO LB t/sqrt(n log n)"});
    for (const auto& o : outcomes) {
        if (o.row.scenario.adversary != sim::AdversaryKind::CrashTargetedCoin) continue;
        const Count q = *o.row.scenario.q;
        const double crash_mean = o.agg.rounds.mean();
        const double byz_mean = mean_of(q, sim::AdversaryKind::WorstCase);
        tab.add_row({Table::num(std::uint64_t{q}), Table::num(crash_mean, 1),
                     Table::num(byz_mean, 1),
                     Table::num(crash_mean / std::max(1.0, byz_mean), 2),
                     Table::num(an::rounds_lower_bound(double(n), double(q)), 2)});
    }
    tab.print(std::cout);
    benchutil::maybe_write_csv(cli, sim::sweep_csv_table(tab.title(), outcomes),
                               "e13_crash_lower_bound");
    std::printf(
        "Shape check vs paper: crash faults alone produce rounds growing with q\n"
        "(Theorem 1's message: the adaptive lower bound does not need Byzantine\n"
        "behaviour), but each crash buys less delay than a full corruption —\n"
        "the crash/byz ratio stays below 1 and crash-immune committees cap the\n"
        "attack early at this committee size.\n");
}

void BM_crash_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = 256;
    s.t = 85;
    s.q = static_cast<Count>(state.range(0));
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::CrashTargetedCoin;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_crash_trial)->Arg(10)->Arg(85);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    adba::benchutil::init_threads(cli);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
