// E13 — lower-bound witness (Theorem 1, Bar-Joseph & Ben-Or): the
// Ω(t/sqrt(n log n)) bound holds already for adaptive rushing CRASH faults.
// Our targeted-crash adversary is that construction operationalized: it
// drags each committee's flip sum across the >=0 boundary with ~|S|+1
// mid-broadcast crashes per ruined phase.
//
// Measured: rounds vs crash budget q for Algorithm 3 under crash faults
// only, against the Byzantine worst case and the BJBO curve. Crash ruin
// costs ~2x the Byzantine ruin (a crash removes a flip; a corruption
// removes a flip AND adds an equivocator), and some committees are
// crash-immune (unanimous flips behind the tie rule) — both visible below.
#include <cstdio>
#include <iostream>

#include "analysis/bounds.hpp"
#include "bench/common.hpp"
#include "sim/runner.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

void experiment(const Cli& cli) {
    const auto n = static_cast<NodeId>(cli.get_int("n", 256));
    const auto t = static_cast<Count>(cli.get_int("t", (n - 1) / 3));
    const auto trials = static_cast<Count>(cli.get_int("trials", 25));
    std::printf("E13: crash-fault lower-bound witness on Algorithm 3 (n=%u, budget "
                "t=%u, %u trials).\n", n, t, trials);

    Table tab("E13: rounds under adaptive crash vs Byzantine worst case");
    tab.set_header({"q", "crash rounds", "byzantine rounds", "crash/byz",
                    "BJBO LB t/sqrt(n log n)"});
    for (Count q : {0u, 5u, 10u, 20u, 40u, t}) {
        if (q > t) continue;
        sim::Scenario crash;
        crash.n = n;
        crash.t = t;
        crash.q = q;
        crash.protocol = sim::ProtocolKind::Ours;
        crash.adversary = sim::AdversaryKind::CrashTargetedCoin;
        crash.inputs = sim::InputPattern::Split;
        sim::Scenario byz = crash;
        byz.adversary = sim::AdversaryKind::WorstCase;
        const auto agg_crash = sim::run_trials(crash, 0xE13, trials);
        const auto agg_byz = sim::run_trials(byz, 0xE13, trials);
        tab.add_row({Table::num(std::uint64_t{q}), Table::num(agg_crash.rounds.mean(), 1),
                     Table::num(agg_byz.rounds.mean(), 1),
                     Table::num(agg_crash.rounds.mean() /
                                    std::max(1.0, agg_byz.rounds.mean()), 2),
                     Table::num(an::rounds_lower_bound(double(n), double(q)), 2)});
    }
    tab.print(std::cout);
    std::printf(
        "Shape check vs paper: crash faults alone produce rounds growing with q\n"
        "(Theorem 1's message: the adaptive lower bound does not need Byzantine\n"
        "behaviour), but each crash buys less delay than a full corruption —\n"
        "the crash/byz ratio stays below 1 and crash-immune committees cap the\n"
        "attack early at this committee size.\n");
}

void BM_crash_trial(benchmark::State& state) {
    sim::Scenario s;
    s.n = 256;
    s.t = 85;
    s.q = static_cast<Count>(state.range(0));
    s.protocol = sim::ProtocolKind::Ours;
    s.adversary = sim::AdversaryKind::CrashTargetedCoin;
    s.inputs = sim::InputPattern::Split;
    std::uint64_t seed = 0;
    for (auto _ : state) benchmark::DoNotOptimize(sim::run_trial(s, seed++));
}
BENCHMARK(BM_crash_trial)->Arg(10)->Arg(85);

}  // namespace

int main(int argc, char** argv) {
    const adba::Cli cli(argc, argv);
    experiment(cli);
    adba::benchutil::run_benchmark_tail(cli);
    return 0;
}
