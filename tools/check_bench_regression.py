#!/usr/bin/env python3
"""Fail CI when the freshly measured engine throughput regresses.

Compares a fresh BENCH_engine.json against the committed baseline and exits
non-zero when trials_per_sec at any common n drops by more than the
tolerance (default 30%). The generous tolerance absorbs CI-runner hardware
variance while still catching the order-of-magnitude regressions a botched
delivery/batch-plane change produces; improvements never fail.

Usage: check_bench_regression.py BASELINE FRESH [--tolerance=0.30]
"""

import json
import sys


def entries_by_n(path):
    with open(path) as fh:
        doc = json.load(fh)
    return {e["n"]: e for e in doc.get("entries", [])}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 0.30
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])

    baseline = entries_by_n(args[0])
    fresh = entries_by_n(args[1])
    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("check_bench_regression: no common n entries between "
              f"{args[0]} and {args[1]}", file=sys.stderr)
        return 2

    failed = False
    for n in common:
        base_tps = baseline[n]["trials_per_sec"]
        fresh_tps = fresh[n]["trials_per_sec"]
        floor = base_tps * (1.0 - tolerance)
        status = "ok" if fresh_tps >= floor else "REGRESSION"
        print(f"n={n:5d}  baseline {base_tps:10.1f} trials/s  "
              f"fresh {fresh_tps:10.1f} trials/s  floor {floor:10.1f}  {status}")
        if fresh_tps < floor:
            failed = True

    if failed:
        print(f"\nFAIL: trials_per_sec dropped more than {tolerance:.0%} below "
              "the committed baseline at one or more sizes.", file=sys.stderr)
        return 1
    print(f"\nOK: all sizes within {tolerance:.0%} of the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
