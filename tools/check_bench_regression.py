#!/usr/bin/env python3
"""Fail CI when the freshly measured engine throughput regresses.

Compares a fresh BENCH_engine.json against the committed baseline and exits
non-zero when a tracked rate at any common n drops by more than the
tolerance (default 30%). The generous tolerance absorbs CI-runner hardware
variance while still catching the order-of-magnitude regressions a botched
delivery/batch-plane change produces; improvements never fail.

Four blocks are gated, each by the same rule:
  entries         serial trials_per_sec per n
  sharded         intra-trial-sharded trials_per_sec per n
  tally_kernels   packed_gb_per_sec per n (the popcount tally build)
  sparse          sparse-plane trials_per_sec per n

A block that exists in the baseline but is missing (or empty) in the fresh
measurement fails LOUDLY (exit 2): a silently vanished section would read
as "no regression" exactly when the bench stopped measuring it. The
asymmetric case — a block the fresh bench measures but the committed
baseline has never gated — is a NOTICE, not a failure: that is exactly what
the first CI run after adding a bench section looks like, and it starts
being gated the moment the baseline is regenerated with it.

Usage: check_bench_regression.py BASELINE FRESH [--tolerance=0.30]
"""

import json
import sys

# (json path to the entries list, rate field to gate)
BLOCKS = [
    (("entries",), "trials_per_sec"),
    (("sharded", "entries"), "trials_per_sec"),
    (("tally_kernels", "entries"), "packed_gb_per_sec"),
    (("sparse", "entries"), "trials_per_sec"),
]


def load(path):
    with open(path) as fh:
        return json.load(fh)


def block_by_n(doc, keys):
    node = doc
    for k in keys:
        if not isinstance(node, dict) or k not in node:
            return None
        node = node[k]
    if not isinstance(node, list):
        return None
    return {e["n"]: e for e in node}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 0.30
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])

    base_doc = load(args[0])
    fresh_doc = load(args[1])

    failed = False
    compared = 0
    new_blocks = 0
    for keys, field in BLOCKS:
        name = ".".join(keys)
        baseline = block_by_n(base_doc, keys)
        fresh = block_by_n(fresh_doc, keys)
        if not baseline:
            if fresh:
                # Never-before-gated block: the first run after a bench grows
                # a section. Not a failure — it gates once the baseline is
                # regenerated to include it.
                print(f"[{name}] new block (no baseline yet); regenerate the "
                      "committed baseline to start gating it")
                new_blocks += 1
            else:
                print(f"[{name}] absent from baseline and fresh; skipped")
            continue
        if not fresh:
            print(f"check_bench_regression: block '{name}' present in "
                  f"{args[0]} but missing/empty in {args[1]} — the bench "
                  "stopped measuring it.", file=sys.stderr)
            return 2
        common = sorted(set(baseline) & set(fresh))
        if not common:
            print(f"check_bench_regression: no common n entries in block "
                  f"'{name}' between {args[0]} and {args[1]}", file=sys.stderr)
            return 2
        for n in common:
            base_rate = baseline[n][field]
            fresh_rate = fresh[n][field]
            floor = base_rate * (1.0 - tolerance)
            status = "ok" if fresh_rate >= floor else "REGRESSION"
            print(f"[{name}] n={n:5d}  baseline {base_rate:10.1f} {field}  "
                  f"fresh {fresh_rate:10.1f}  floor {floor:10.1f}  {status}")
            compared += 1
            if fresh_rate < floor:
                failed = True

    if compared == 0 and new_blocks == 0:
        print("check_bench_regression: nothing compared — baseline has no "
              "gated blocks.", file=sys.stderr)
        return 2
    if failed:
        print(f"\nFAIL: a tracked rate dropped more than {tolerance:.0%} below "
              "the committed baseline at one or more sizes.", file=sys.stderr)
        return 1
    print(f"\nOK: all tracked rates within {tolerance:.0%} of the committed "
          "baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
