#!/usr/bin/env python3
"""Fail CI when the freshly measured engine throughput regresses.

Compares a fresh BENCH_engine.json against the committed baseline and exits
non-zero when a tracked rate at any common n moves past its tolerance in
the bad direction (default 30%). The generous tolerance absorbs CI-runner
hardware variance while still catching the order-of-magnitude regressions a
botched delivery/batch-plane change produces; improvements never fail.

Gated blocks (each gate is a (block, field, direction) triple):
  entries         serial trials_per_sec per n            (higher is better)
  sharded         intra-trial-sharded trials_per_sec     (higher is better)
  tally_kernels   packed_gb_per_sec per n                (higher is better)
  sparse          counter-stream trials_per_sec per n    (higher is better)
  sparse          counter-stream ns_per_probe per n      (LOWER is better)
  sparse_chain    chain-stream trials_per_sec per n      (higher is better)
  fused           64-lane fused trials_per_sec per n     (higher is better)
  fused           64-lane fused ns_per_trial per n       (LOWER is better)

A block that exists in the baseline but is missing (or empty) in the fresh
measurement fails LOUDLY (exit 2), and so does a gated FIELD present in a
baseline entry but absent from the fresh one: a silently vanished number
would read as "no regression" exactly when the bench stopped measuring it.

Run health is gated before any rate: every entry of a gated block in the
FRESH document must report zero `exhausted` (round-cap exhaustions +
watchdog timeouts) and zero `faulted` trials — a timing row averaged over
trials that never decided is not a throughput measurement, so any nonzero
count exits 2 regardless of tolerances.
The asymmetric case — a block/field the fresh bench measures but the
committed baseline has never gated — is a NOTICE, not a failure: that is
exactly what the first CI run after adding a bench section looks like, and
it starts being gated the moment the baseline is regenerated with it.

The tolerance is per-block configurable: --tolerance=X sets the global
default and --tolerance-BLOCK=X (BLOCK as printed in the [brackets], e.g.
--tolerance-sparse=0.45) overrides it for one block — noisy cells get
slack without loosening every gate.

--max-sparse-flatness=R additionally enforces an ABSOLUTE ceiling on the
fresh sparse.ns_per_node_round_max_over_min ratio (the batched plane's
scaling-flatness claim); omitted means not checked.

Usage: check_bench_regression.py BASELINE FRESH [--tolerance=0.30]
           [--tolerance-BLOCK=X ...] [--max-sparse-flatness=R]
"""

import json
import sys

# Each gate: block name (tolerance key + display), json path to the entries
# list, field compared per n, and which direction is an improvement.
GATES = [
    {"block": "entries", "path": ("entries",),
     "field": "trials_per_sec", "better": "higher"},
    {"block": "sharded", "path": ("sharded", "entries"),
     "field": "trials_per_sec", "better": "higher"},
    {"block": "tally_kernels", "path": ("tally_kernels", "entries"),
     "field": "packed_gb_per_sec", "better": "higher"},
    {"block": "sparse", "path": ("sparse", "entries"),
     "field": "trials_per_sec", "better": "higher"},
    {"block": "sparse", "path": ("sparse", "entries"),
     "field": "ns_per_probe", "better": "lower"},
    {"block": "sparse_chain", "path": ("sparse_chain", "entries"),
     "field": "trials_per_sec", "better": "higher"},
    {"block": "fused", "path": ("fused", "entries"),
     "field": "trials_per_sec", "better": "higher"},
    {"block": "fused", "path": ("fused", "entries"),
     "field": "ns_per_trial", "better": "lower"},
]


def load(path):
    with open(path) as fh:
        return json.load(fh)


def block_by_n(doc, keys):
    node = doc
    for k in keys:
        if not isinstance(node, dict) or k not in node:
            return None
        node = node[k]
    if not isinstance(node, list):
        return None
    return {e["n"]: e for e in node}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 0.30
    block_tolerance = {}
    flatness_max = None
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif a.startswith("--tolerance-"):
            key, val = a[len("--tolerance-"):].split("=", 1)
            block_tolerance[key] = float(val)
        elif a.startswith("--max-sparse-flatness="):
            flatness_max = float(a.split("=", 1)[1])

    base_doc = load(args[0])
    fresh_doc = load(args[1])

    # Health gate first: a fresh gated entry with exhausted/faulted trials is
    # not a valid measurement, whatever the rates say.
    for path in sorted({g["path"] for g in GATES}):
        fresh = block_by_n(fresh_doc, path)
        if not fresh:
            continue
        name = "/".join(path[:-1]) if len(path) > 1 else path[0]
        for n in sorted(fresh):
            for health in ("exhausted", "faulted"):
                count = fresh[n].get(health, 0)
                if count:
                    print(f"check_bench_regression: block '{name}' (n={n}) "
                          f"reports {count} {health} trial(s) in the fresh "
                          "measurement — the bench run itself is unhealthy; "
                          "fix the run before gating rates.", file=sys.stderr)
                    return 2

    failed = False
    compared = 0
    new_gates = 0
    for gate in GATES:
        name, field = gate["block"], gate["field"]
        tol = block_tolerance.get(name, tolerance)
        lower_better = gate["better"] == "lower"
        baseline = block_by_n(base_doc, gate["path"])
        fresh = block_by_n(fresh_doc, gate["path"])
        if not baseline:
            if fresh:
                # Never-before-gated block: the first run after a bench grows
                # a section. Not a failure — it gates once the baseline is
                # regenerated to include it.
                print(f"[{name}] new block (no baseline yet); regenerate the "
                      "committed baseline to start gating it")
                new_gates += 1
            else:
                print(f"[{name}] absent from baseline and fresh; skipped")
            continue
        if not fresh:
            print(f"check_bench_regression: block '{name}' present in "
                  f"{args[0]} but missing/empty in {args[1]} — the bench "
                  "stopped measuring it.", file=sys.stderr)
            return 2
        common = sorted(set(baseline) & set(fresh))
        if not common:
            print(f"check_bench_regression: no common n entries in block "
                  f"'{name}' between {args[0]} and {args[1]}", file=sys.stderr)
            return 2
        if not any(field in baseline[n] for n in common):
            # Baseline predates this gate's field — same shape as a new
            # block: notice now, gate after the baseline is regenerated.
            print(f"[{name}] field '{field}' not in baseline yet; regenerate "
                  "the committed baseline to start gating it")
            new_gates += 1
            continue
        for n in common:
            if field not in baseline[n]:
                continue
            if field not in fresh[n]:
                print(f"check_bench_regression: field '{field}' gated in "
                      f"block '{name}' (n={n}) but missing from the fresh "
                      "measurement — the bench stopped reporting it.",
                      file=sys.stderr)
                return 2
            base_rate = baseline[n][field]
            fresh_rate = fresh[n][field]
            if lower_better:
                bound = base_rate * (1.0 + tol)
                ok = fresh_rate <= bound
                edge = "ceil"
            else:
                bound = base_rate * (1.0 - tol)
                ok = fresh_rate >= bound
                edge = "floor"
            status = "ok" if ok else "REGRESSION"
            print(f"[{name}] n={n:7d}  baseline {base_rate:10.2f} {field}  "
                  f"fresh {fresh_rate:10.2f}  {edge} {bound:10.2f}  {status}")
            compared += 1
            if not ok:
                failed = True

    if flatness_max is not None:
        ratio = fresh_doc.get("sparse", {}).get("ns_per_node_round_max_over_min")
        if ratio is None:
            print("check_bench_regression: --max-sparse-flatness given but "
                  f"{args[1]} has no sparse.ns_per_node_round_max_over_min.",
                  file=sys.stderr)
            return 2
        status = "ok" if ratio <= flatness_max else "REGRESSION"
        print(f"[sparse] ns_per_node_round max/min {ratio:.3f}  "
              f"ceiling {flatness_max:.3f}  {status}")
        compared += 1
        if ratio > flatness_max:
            failed = True

    if compared == 0 and new_gates == 0:
        print("check_bench_regression: nothing compared — baseline has no "
              "gated blocks.", file=sys.stderr)
        return 2
    if failed:
        print("\nFAIL: a tracked rate moved past its tolerance in the bad "
              "direction at one or more sizes.", file=sys.stderr)
        return 1
    print("\nOK: all tracked rates within tolerance of the committed "
          "baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
