// adba_sim — the one entry point for every registered scenario.
//
// Runs any workload the kernel knows about (--workload=binary|coin|mv|macro,
// aliases accepted) with any (protocol x adversary x input) combination the
// registries know about, selected by name, instead of recompiling one of
// the bespoke bench binaries:
//
//   adba_sim --list
//   adba_sim --protocol=ours --adversary=worst-case --n=128 --t=40 --trials=50
//   adba_sim --protocol=phase-king --n=33               # adversary defaults to
//                                                       # the protocol's strongest
//   adba_sim --scenario="protocol=ours adversary=chaos n=64 t=21 q=10"
//   adba_sim --workload=mv --adversary=prelude+worst-case \
//            --inputs=near-quorum --n=96 --t=31         # multi-valued stack
//   adba_sim --workload=mv --scenario="adversary=inner inputs=two-blocks n=64 t=21"
//   adba_sim --workload=coin --n=256 --k=64 --f=4       # standalone common coin
//   adba_sim --workload=macro --n=65536 --t=256         # asymptotic simulator
//
// Flags: --workload --protocol --adversary --inputs --n --t --q --trials
//        --seed --threads --intra_threads --csv_dir --scenario --alpha
//        --gamma --beta --phases --kappa --max_rounds --transcript
//        --reference --batch=on|off --shard=on|off --simd=on|off
//        --plane=flat|sparse --sample_degree --sparse_seed
//        --sparse_stream=chain|counter --fused=on|off --las_vegas --fallback
//        --k --f --attack --forced_bit --schedule --list
//        --watchdog_ms --chunk --checkpoint --resume
//        --faults="key=value ..." --mem_budget_mb
// Unknown flags (and unknown workload/protocol/adversary names) fail loudly
// with did-you-mean suggestions (Cli strict mode + registry lookups).
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/faults.hpp"
#include "sim/macro.hpp"
#include "sim/registry.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

std::string join(const std::vector<std::string>& parts) {
    std::string out;
    for (const auto& p : parts) out += (out.empty() ? "" : ", ") + p;
    return out.empty() ? "-" : out;
}

int list_capabilities() {
    const auto& protocols = sim::ProtocolRegistry::instance();
    const auto& adversaries = sim::AdversaryRegistry::instance();

    Table wt("Workloads (--workload=...)");
    wt.set_header({"name", "aliases", "scenario", "sweep grid", "summary"});
    for (const auto& w : sim::workloads())
        wt.add_row({w.name, join(w.aliases), w.scenario, w.grid, w.summary});
    wt.print(std::cout);

    Table pt("Registered protocols (--workload=binary)");
    pt.set_header({"name", "aliases", "resilience", "strongest adversary", "schedule",
                   "summary"});
    for (const auto* e : protocols.list())
        pt.add_row({e->name, join(e->aliases), e->resilience,
                    adversaries.at(e->strongest).name, e->schedule_of ? "yes" : "no",
                    e->summary});
    pt.print(std::cout);

    Table at("Registered adversaries");
    at.set_header({"name", "aliases", "adaptive", "rushing", "constraint", "summary"});
    for (const auto* e : adversaries.list()) {
        std::string constraint = "-";
        if (e->requires_protocol)
            constraint = "requires " + protocols.at(*e->requires_protocol).name;
        else if (e->needs_schedule)
            constraint = "needs committee schedule";
        at.add_row({e->name, join(e->aliases), e->adaptive, e->rushing, constraint,
                    e->summary});
    }
    at.print(std::cout);

    Table mt("Multi-valued adversaries (--workload=mv)");
    mt.set_header({"name", "aliases", "summary"});
    for (const auto* e : sim::MvAdversaryRegistry::instance().list())
        mt.add_row({e->name, join(e->aliases), e->summary});
    mt.print(std::cout);

    std::printf("Input patterns: all-zero, all-one, split, random "
                "(multi-valued: all-same, two-blocks, all-distinct, random, "
                "near-quorum).\n"
                "Coin attacks (--workload=coin): split, force-bit. "
                "Macro schedules (--workload=macro): ours, cc-rushing, "
                "cc-classic.\n");
    return 0;
}

void maybe_csv(const Cli& cli, const Table& table, const std::string& slug) {
    const std::string dir = cli.get("csv_dir", "");
    if (dir.empty()) return;
    std::printf("wrote %s\n", write_csv(table, dir, slug).c_str());
}

double pct(Count good, Count total) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(good) / total;
}

/// Per-run executor knobs shared by every driver: --chunk fixes the work
/// unit (0 = auto), --checkpoint=path arms the chunk journal, --resume
/// loads completed chunks from it instead of re-running them.
sim::ExecutorConfig exec_config(const Cli& cli) {
    sim::ExecutorConfig exec;
    exec.chunk = static_cast<Count>(cli.get_int("chunk", 0));
    exec.checkpoint = cli.get("checkpoint", "");
    exec.resume = cli.get_bool("resume", false);
    if (exec.resume && exec.checkpoint.empty())
        throw ContractViolation(
            "--resume resumes a chunk journal and needs --checkpoint=path "
            "pointing at the journal of the interrupted run");
    return exec;
}

int run_multivalued(const Cli& cli) {
    if (cli.has("fused"))
        throw ContractViolation(
            "--fused co-executes 64 binary trials per machine word; the "
            "multi-valued stack has no fused plane (the Turpin-Coan word "
            "histograms do not bit-slice) — drop the flag or use "
            "--workload=binary");
    sim::MvScenario s;
    if (cli.has("scenario")) s = sim::MvScenario::parse(cli.get("scenario", ""));
    if (cli.has("n") || s.n == 0) s.n = static_cast<NodeId>(cli.get_int("n", 96));
    if (cli.has("t"))
        s.t = static_cast<Count>(cli.get_int("t", 0));
    else if (!cli.has("scenario"))
        s.t = (s.n - 1) / 3;
    if (cli.has("q")) s.q = static_cast<Count>(cli.get_int("q", 0));
    if (cli.has("inputs")) s.inputs = sim::parse_mv_input_pattern(cli.get("inputs", ""));
    if (cli.has("adversary"))
        s.adversary =
            sim::MvAdversaryRegistry::instance().at(cli.get("adversary", "")).kind;
    if (cli.has("alpha")) s.tuning.alpha = cli.get_double("alpha", s.tuning.alpha);
    if (cli.has("gamma")) s.tuning.gamma = cli.get_double("gamma", s.tuning.gamma);
    if (cli.has("beta")) s.tuning.beta = cli.get_double("beta", s.tuning.beta);
    if (cli.has("las_vegas")) s.las_vegas = cli.get_bool("las_vegas", false);
    if (cli.has("fallback"))
        s.fallback = static_cast<net::Word>(cli.get_int("fallback", 0));
    if (cli.has("reference")) s.reference_delivery = cli.get_bool("reference", false);
    if (cli.has("batch")) s.use_batch = cli.get_bool("batch", true);
    if (cli.has("simd")) s.use_simd = cli.get_bool("simd", true);
    // Round-trips like the binary stack; validate() rejects plane=sparse
    // with the why_incompatible message (no mv sparse batch yet).
    if (cli.has("plane")) s.sparse_plane = sim::parse_plane_name(cli.get("plane", ""));
    if (cli.has("sample_degree"))
        s.sample_degree = static_cast<Count>(cli.get_int("sample_degree", 0));
    if (cli.has("watchdog_ms"))
        s.watchdog_ms = static_cast<std::uint32_t>(cli.get_int("watchdog_ms", 0));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const sim::ExecutorConfig exec = exec_config(cli);
    cli.get("csv_dir", "");  // queried late by maybe_csv; recognize it now
    cli.check_unused();      // fail on typos BEFORE burning trial time

    // The spec round-trips: parse(describe(s)) == s (pinned in tests).
    std::printf("mv scenario: %s\n", s.describe().c_str());
    std::printf("turpin-coan over alg3, %u trials, %u threads\n", trials,
                sim::default_threads());

    // Infeasible scenarios throw the why_incompatible message here.
    const sim::MvAggregate agg = sim::run_mv_trials(s, seed, trials, exec);
    // Faulted trials ran no protocol: exclude them from every rate's
    // denominator and guard the Samples reads (empty when all faulted).
    const Count ran = agg.trials - agg.faulted;
    const bool have = !agg.rounds.empty();
    Table table("adba_sim: multi-valued result");
    table.set_header({"inputs", "adversary", "agree %", "validity", "real-value %",
                      "mean rounds", "max rounds"});
    table.add_row({sim::to_string(s.inputs), sim::to_string(s.adversary),
                   Table::num(pct(ran - agg.agreement_failures, ran), 1),
                   agg.validity_failures == 0 ? "ok" : "VIOLATED",
                   Table::num(pct(agg.decided_real, ran), 1),
                   Table::num(have ? agg.rounds.mean() : 0.0, 1),
                   Table::num(have ? agg.rounds.max() : 0.0, 0)});
    table.print(std::cout);
    maybe_csv(cli, sim::csv_table("adba_sim: multi-valued result",
                                  {{s.describe(), agg}}),
              "adba_sim_mv");
    return agg.validity_failures == 0 ? 0 : 1;
}

int run_coin(const Cli& cli) {
    if (cli.has("plane") || cli.has("sample_degree"))
        throw ContractViolation(
            "--plane/--sample_degree select the binary stack's delivery plane; "
            "the standalone coin workload has no delivery plane (drop the flag "
            "or use --workload=binary)");
    if (cli.has("fused"))
        throw ContractViolation(
            "--fused selects the binary stack's 64-lane trial plane; the "
            "standalone coin workload has no fused plane (drop the flag or "
            "use --workload=binary)");
    sim::CoinScenario s;
    s.n = static_cast<NodeId>(cli.get_int("n", 256));
    s.designated = static_cast<NodeId>(cli.get_int("k", s.n));  // == n: Algorithm 1
    s.f = static_cast<Count>(cli.get_int("f", 0));
    s.attack = sim::parse_coin_attack(cli.get("attack", "split"));
    s.forced_bit = static_cast<Bit>(cli.get_int("forced_bit", 0));
    const auto trials = static_cast<Count>(cli.get_int("trials", 2000));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const sim::ExecutorConfig exec = exec_config(cli);
    cli.get("csv_dir", "");
    cli.check_unused();

    std::string label = "n=" + std::to_string(s.n) + " k=" +
                        std::to_string(s.designated) + " f=" + std::to_string(s.f) +
                        " attack=" + sim::to_string(s.attack);
    if (s.attack == adv::CoinAttack::ForceBit)
        label += " forced_bit=" + std::to_string(int(s.forced_bit));
    std::printf("coin scenario: %s, %u trials, %u threads\n", label.c_str(), trials,
                sim::default_threads());

    // Infeasible (n, k) throws the why_incompatible message here.
    const sim::CoinAggregate agg = sim::run_coin_trials(s, seed, trials, exec);
    Table table("adba_sim: common-coin result");
    table.set_header({"n", "k", "f", "attack", "P(common)", "P(1|common)",
                      "attack feasible %"});
    table.add_row({Table::num(static_cast<std::uint64_t>(s.n)),
                   Table::num(static_cast<std::uint64_t>(s.designated)),
                   Table::num(static_cast<std::uint64_t>(s.f)),
                   sim::to_string(s.attack), Table::num(agg.p_common(), 3),
                   Table::num(agg.p_one_given_common(), 3),
                   Table::num(pct(agg.attack_feasible, agg.trials - agg.faulted), 1)});
    table.print(std::cout);
    maybe_csv(cli, sim::csv_table("adba_sim: common-coin result", {{label, agg}}),
              "adba_sim_coin");
    return 0;
}

int run_macro(const Cli& cli) {
    if (cli.has("fused"))
        throw ContractViolation(
            "--fused selects the binary stack's 64-lane trial plane; the "
            "macro asymptotic simulator steps counts, not bit planes (drop "
            "the flag or use --workload=binary)");
    sim::MacroScenario s;
    s.n = static_cast<std::uint64_t>(cli.get_int("n", 1 << 16));
    s.t = static_cast<std::uint64_t>(cli.get_int("t", 256));
    s.q = cli.has("q") ? static_cast<std::uint64_t>(cli.get_int("q", 0)) : s.t;
    s.schedule = sim::parse_macro_schedule(cli.get("schedule", "ours"));
    const auto trials = static_cast<Count>(cli.get_int("trials", 50));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const sim::ExecutorConfig exec = exec_config(cli);
    cli.get("csv_dir", "");
    cli.check_unused();

    const std::string label = "n=" + std::to_string(s.n) + " t=" +
                              std::to_string(s.t) + " q=" + std::to_string(s.q) +
                              " " + sim::to_string(s.schedule);
    std::printf("macro scenario: %s, %u trials, %u threads\n", label.c_str(), trials,
                sim::default_threads());

    const sim::MacroAggregate agg = sim::run_macro_trials(s, seed, trials, exec);
    const Count ran = agg.trials - agg.faulted;
    const bool have = !agg.rounds.empty();
    Table table("adba_sim: macro result");
    table.set_header({"schedule", "agree %", "mean rounds", "p90 rounds",
                      "mean phases", "mean corruptions"});
    table.add_row({sim::to_string(s.schedule),
                   Table::num(pct(ran - agg.agreement_failures, ran), 1),
                   Table::num(have ? agg.rounds.mean() : 0.0, 1),
                   Table::num(have ? agg.rounds.quantile(0.9) : 0.0, 1),
                   Table::num(have ? agg.phases.mean() : 0.0, 1),
                   Table::num(have ? agg.corruptions.mean() : 0.0, 1)});
    table.print(std::cout);
    maybe_csv(cli, sim::csv_table("adba_sim: macro result", {{label, agg}}),
              "adba_sim_macro");
    return 0;
}

int run_binary(const Cli& cli) {
    const auto& protocols = sim::ProtocolRegistry::instance();

    sim::Scenario s;
    if (cli.has("scenario")) s = sim::Scenario::parse(cli.get("scenario", ""));
    if (cli.has("protocol")) s.protocol = protocols.at(cli.get("protocol", "")).kind;
    const sim::ProtocolEntry& proto = protocols.at(s.protocol);
    if (cli.has("adversary"))
        s.adversary = sim::AdversaryRegistry::instance().at(cli.get("adversary", "")).kind;
    else if (!cli.has("scenario"))
        s.adversary = proto.strongest;  // per-protocol default pairing
    if (cli.has("inputs")) s.inputs = sim::parse_input_pattern(cli.get("inputs", ""));
    if (cli.has("n") || s.n == 0) s.n = static_cast<NodeId>(cli.get_int("n", 64));
    if (cli.has("t")) {
        s.t = static_cast<Count>(cli.get_int("t", 0));
    } else if (!cli.has("scenario")) {
        // Largest budget the protocol's resilience predicate admits at n.
        s.t = (s.n - 1) / 3;
        while (s.t > 0 && !proto.supports(s.n, s.t)) --s.t;
    }
    if (cli.has("q")) s.q = static_cast<Count>(cli.get_int("q", 0));
    if (cli.has("alpha")) s.tuning.alpha = cli.get_double("alpha", s.tuning.alpha);
    if (cli.has("gamma")) s.tuning.gamma = cli.get_double("gamma", s.tuning.gamma);
    if (cli.has("beta")) s.tuning.beta = cli.get_double("beta", s.tuning.beta);
    if (cli.has("phases"))
        s.local_coin_phases = static_cast<Count>(cli.get_int("phases", 64));
    if (cli.has("kappa")) s.sampling_kappa = cli.get_double("kappa", s.sampling_kappa);
    if (cli.has("max_rounds"))
        s.max_rounds_override = static_cast<Round>(cli.get_int("max_rounds", 0));
    if (cli.has("transcript"))
        s.record_transcript = cli.get_bool("transcript", false);
    if (cli.has("reference")) s.reference_delivery = cli.get_bool("reference", false);
    // --batch=on|off: native SoA batch stepping vs the per-node reference
    // path (mirrors the scenario key `batch`). --shard / --simd are the
    // same shape for the intra-trial shard and packed-tally toggles;
    // --intra_threads (read in main via init_intra_threads) sets the
    // process-wide shard-count default the scenario key can override.
    if (cli.has("batch")) s.use_batch = cli.get_bool("batch", true);
    if (cli.has("shard")) s.use_shard = cli.get_bool("shard", true);
    if (cli.has("simd")) s.use_simd = cli.get_bool("simd", true);
    // --plane=flat|sparse selects the delivery plane; --sample_degree sets
    // the per-receiver sampled senders under sparse (0 = plane default);
    // --sparse_seed picks the topology stream and --sparse_stream the
    // frozen sample-derivation version (mirroring the scenario keys).
    if (cli.has("plane")) s.sparse_plane = sim::parse_plane_name(cli.get("plane", ""));
    if (cli.has("sample_degree"))
        s.sample_degree = static_cast<Count>(cli.get_int("sample_degree", 0));
    if (cli.has("sparse_seed"))
        s.sparse_seed = static_cast<std::uint64_t>(cli.get_int("sparse_seed", 0));
    if (cli.has("sparse_stream"))
        s.sparse_stream = sim::parse_sparse_stream_name(cli.get("sparse_stream", ""));
    // --fused=on|off co-executes 64 trials per machine word through the
    // fused trial plane (scenario key `fused`); validate() rejects
    // unsupported protocol/adversary/plane combinations with the
    // why_incompatible message.
    if (cli.has("fused")) s.use_fused = cli.get_bool("fused", false);
    if (cli.has("watchdog_ms"))
        s.watchdog_ms = static_cast<std::uint32_t>(cli.get_int("watchdog_ms", 0));

    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const sim::ExecutorConfig exec = exec_config(cli);
    cli.get("csv_dir", "");  // queried late by maybe_csv; recognize it now
    cli.check_unused();      // fail on typos BEFORE burning trial time

    const sim::ScenarioPlan plan = sim::validate(s);
    const sim::BudgetHint budget = plan.protocol->budgets(s);
    std::printf("scenario: %s\n", s.describe().c_str());
    std::printf("phase budget %u, round cap %u, %u trials, %u threads\n", budget.phases,
                budget.max_rounds, trials, sim::default_threads());

    const sim::Aggregate agg = sim::run_trials(s, seed, trials, exec);
    // Faulted trials ran no protocol: exclude them from every rate's
    // denominator and guard the Samples reads (empty when all faulted).
    const Count ran = agg.trials - agg.faulted;
    const bool have = !agg.rounds.empty();
    Table table("adba_sim: " + plan.protocol->name + " vs " + plan.adversary->name);
    table.set_header({"protocol", "adversary", "agree %", "validity", "mean rounds",
                      "p90 rounds", "max rounds", "mean msgs", "mean corruptions"});
    table.add_row({sim::to_string(s.protocol), sim::to_string(s.adversary),
                   Table::num(pct(ran - agg.agreement_failures, ran), 1),
                   agg.validity_failures == 0 ? "ok" : "VIOLATED",
                   Table::num(have ? agg.rounds.mean() : 0.0, 1),
                   Table::num(have ? agg.rounds.quantile(0.9) : 0.0, 1),
                   Table::num(have ? agg.rounds.max() : 0.0, 0),
                   Table::num(have ? agg.messages.mean() : 0.0, 0),
                   Table::num(have ? agg.corruptions.mean() : 0.0, 1)});
    table.print(std::cout);
    maybe_csv(cli, sim::csv_table("adba_sim: " + plan.protocol->name + " vs " +
                                      plan.adversary->name,
                                  {{s.describe(), agg}}),
              "adba_sim_" + plan.protocol->name + "_" + plan.adversary->name);
    return agg.validity_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const Cli cli(argc, argv);
        sim::init_threads(cli);
        sim::init_intra_threads(cli);
        const bool faults_armed = sim::init_faults(cli);
        sim::init_mem_budget(cli);
        if (cli.get_bool("list", false)) {
            const int rc = list_capabilities();
            cli.check_unused();
            return rc;
        }
        std::string name = sim::workload_at(cli.get("workload", "binary")).name;
        // Back-compat: --protocol=turpin-coan/multivalued/mv selected the mv
        // stack before --workload existed. Only the binary driver reads
        // --protocol, so query it only when routing there — passing it to
        // the coin/macro/mv drivers must fail strict-mode, not be dropped.
        if (name == "binary") {
            const std::string protocol = cli.get("protocol", "");
            if (protocol == "turpin-coan" || protocol == "multivalued" ||
                protocol == "mv")
                name = "mv";
        }
        int rc;
        if (name == "mv") rc = run_multivalued(cli);
        else if (name == "coin") rc = run_coin(cli);
        else if (name == "macro") rc = run_macro(cli);
        else rc = run_binary(cli);
        if (faults_armed)
            std::printf("%s\n", sim::FaultInjector::stats_line().c_str());
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adba_sim: error: %s\n", e.what());
        return 2;
    }
}
