// adba_sim — the one entry point for every registered scenario.
//
// Runs any (protocol x adversary x input) combination the registries know
// about, selected by name, instead of recompiling one of the bespoke bench
// binaries:
//
//   adba_sim --list
//   adba_sim --protocol=ours --adversary=worst-case --n=128 --t=40 --trials=50
//   adba_sim --protocol=phase-king --n=33               # adversary defaults to
//                                                       # the protocol's strongest
//   adba_sim --scenario="protocol=ours adversary=chaos n=64 t=21 q=10"
//   adba_sim --protocol=turpin-coan --adversary=prelude+worst-case \
//            --inputs=near-quorum --n=96 --t=31         # multi-valued stack
//
// Flags: --protocol --adversary --inputs --n --t --q --trials --seed
//        --threads --csv_dir --scenario --alpha --gamma --beta --phases
//        --kappa --max_rounds --transcript --reference --batch=on|off
//        --las_vegas --fallback --list
// Unknown flags fail loudly (Cli strict mode).
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/registry.hpp"
#include "sim/sweep.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace adba;

std::string join(const std::vector<std::string>& parts) {
    std::string out;
    for (const auto& p : parts) out += (out.empty() ? "" : ", ") + p;
    return out.empty() ? "-" : out;
}

int list_capabilities() {
    const auto& protocols = sim::ProtocolRegistry::instance();
    const auto& adversaries = sim::AdversaryRegistry::instance();

    Table pt("Registered protocols");
    pt.set_header({"name", "aliases", "resilience", "strongest adversary", "schedule",
                   "summary"});
    for (const auto* e : protocols.list())
        pt.add_row({e->name, join(e->aliases), e->resilience,
                    adversaries.at(e->strongest).name, e->schedule_of ? "yes" : "no",
                    e->summary});
    pt.print(std::cout);

    Table at("Registered adversaries");
    at.set_header({"name", "aliases", "adaptive", "rushing", "constraint", "summary"});
    for (const auto* e : adversaries.list()) {
        std::string constraint = "-";
        if (e->requires_protocol)
            constraint = "requires " + protocols.at(*e->requires_protocol).name;
        else if (e->needs_schedule)
            constraint = "needs committee schedule";
        at.add_row({e->name, join(e->aliases), e->adaptive, e->rushing, constraint,
                    e->summary});
    }
    at.print(std::cout);

    Table mt("Multi-valued adversaries (--protocol=turpin-coan)");
    mt.set_header({"name", "aliases", "summary"});
    for (const auto* e : sim::MvAdversaryRegistry::instance().list())
        mt.add_row({e->name, join(e->aliases), e->summary});
    mt.print(std::cout);

    std::printf("Input patterns: all-zero, all-one, split, random "
                "(multi-valued: all-same, two-blocks, all-distinct, random, "
                "near-quorum).\n");
    return 0;
}

void maybe_csv(const Cli& cli, const Table& table, const std::string& slug) {
    const std::string dir = cli.get("csv_dir", "");
    if (dir.empty()) return;
    std::printf("wrote %s\n", write_csv(table, dir, slug).c_str());
}

double pct(Count good, Count total) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(good) / total;
}

int run_multivalued(const Cli& cli) {
    sim::MvScenario s;
    s.n = static_cast<NodeId>(cli.get_int("n", 96));
    s.t = static_cast<Count>(cli.get_int("t", (s.n - 1) / 3));
    s.inputs = sim::parse_mv_input_pattern(cli.get("inputs", "two-blocks"));
    s.adversary =
        sim::MvAdversaryRegistry::instance().at(cli.get("adversary", "worst-case-inner"))
            .kind;
    s.las_vegas = cli.get_bool("las_vegas", false);
    s.fallback = static_cast<net::Word>(cli.get_int("fallback", 0));
    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    cli.get("csv_dir", "");  // queried late by maybe_csv; recognize it now
    cli.check_unused();      // fail on typos BEFORE burning trial time

    std::printf("multi-valued scenario: turpin-coan over alg3, n=%u t=%u inputs=%s "
                "adversary=%s, %u trials, %u threads\n",
                s.n, s.t, sim::to_string(s.inputs).c_str(),
                sim::to_string(s.adversary).c_str(), trials, sim::default_threads());

    const sim::MvAggregate agg = sim::run_mv_trials(s, seed, trials);
    Table table("adba_sim: multi-valued result");
    table.set_header({"inputs", "adversary", "agree %", "validity", "real-value %",
                      "mean rounds", "max rounds"});
    table.add_row({sim::to_string(s.inputs), sim::to_string(s.adversary),
                   Table::num(pct(agg.trials - agg.agreement_failures, agg.trials), 1),
                   agg.validity_failures == 0 ? "ok" : "VIOLATED",
                   Table::num(pct(agg.decided_real, agg.trials), 1),
                   Table::num(agg.rounds.mean(), 1), Table::num(agg.rounds.max(), 0)});
    table.print(std::cout);
    maybe_csv(cli, table, "adba_sim_mv");
    return agg.validity_failures == 0 ? 0 : 1;
}

int run_binary(const Cli& cli) {
    const auto& protocols = sim::ProtocolRegistry::instance();

    sim::Scenario s;
    if (cli.has("scenario")) s = sim::Scenario::parse(cli.get("scenario", ""));
    if (cli.has("protocol")) s.protocol = protocols.at(cli.get("protocol", "")).kind;
    const sim::ProtocolEntry& proto = protocols.at(s.protocol);
    if (cli.has("adversary"))
        s.adversary = sim::AdversaryRegistry::instance().at(cli.get("adversary", "")).kind;
    else if (!cli.has("scenario"))
        s.adversary = proto.strongest;  // per-protocol default pairing
    if (cli.has("inputs")) s.inputs = sim::parse_input_pattern(cli.get("inputs", ""));
    if (cli.has("n") || s.n == 0) s.n = static_cast<NodeId>(cli.get_int("n", 64));
    if (cli.has("t")) {
        s.t = static_cast<Count>(cli.get_int("t", 0));
    } else if (!cli.has("scenario")) {
        // Largest budget the protocol's resilience predicate admits at n.
        s.t = (s.n - 1) / 3;
        while (s.t > 0 && !proto.supports(s.n, s.t)) --s.t;
    }
    if (cli.has("q")) s.q = static_cast<Count>(cli.get_int("q", 0));
    if (cli.has("alpha")) s.tuning.alpha = cli.get_double("alpha", s.tuning.alpha);
    if (cli.has("gamma")) s.tuning.gamma = cli.get_double("gamma", s.tuning.gamma);
    if (cli.has("beta")) s.tuning.beta = cli.get_double("beta", s.tuning.beta);
    if (cli.has("phases"))
        s.local_coin_phases = static_cast<Count>(cli.get_int("phases", 64));
    if (cli.has("kappa")) s.sampling_kappa = cli.get_double("kappa", s.sampling_kappa);
    if (cli.has("max_rounds"))
        s.max_rounds_override = static_cast<Round>(cli.get_int("max_rounds", 0));
    if (cli.has("transcript"))
        s.record_transcript = cli.get_bool("transcript", false);
    if (cli.has("reference")) s.reference_delivery = cli.get_bool("reference", false);
    // --batch=on|off: native SoA batch stepping vs the per-node reference
    // path (mirrors the scenario key `batch`).
    if (cli.has("batch")) s.use_batch = cli.get_bool("batch", true);

    const auto trials = static_cast<Count>(cli.get_int("trials", 20));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    cli.get("csv_dir", "");  // queried late by maybe_csv; recognize it now
    cli.check_unused();      // fail on typos BEFORE burning trial time

    const sim::ScenarioPlan plan = sim::validate(s);
    const sim::BudgetHint budget = plan.protocol->budgets(s);
    std::printf("scenario: %s\n", s.describe().c_str());
    std::printf("phase budget %u, round cap %u, %u trials, %u threads\n", budget.phases,
                budget.max_rounds, trials, sim::default_threads());

    const sim::Aggregate agg = sim::run_trials(s, seed, trials);
    Table table("adba_sim: " + plan.protocol->name + " vs " + plan.adversary->name);
    table.set_header({"protocol", "adversary", "agree %", "validity", "mean rounds",
                      "p90 rounds", "max rounds", "mean msgs", "mean corruptions"});
    table.add_row({sim::to_string(s.protocol), sim::to_string(s.adversary),
                   Table::num(pct(agg.trials - agg.agreement_failures, agg.trials), 1),
                   agg.validity_failures == 0 ? "ok" : "VIOLATED",
                   Table::num(agg.rounds.mean(), 1),
                   Table::num(agg.rounds.quantile(0.9), 1),
                   Table::num(agg.rounds.max(), 0), Table::num(agg.messages.mean(), 0),
                   Table::num(agg.corruptions.mean(), 1)});
    table.print(std::cout);
    maybe_csv(cli, table, "adba_sim_" + plan.protocol->name + "_" + plan.adversary->name);
    return agg.validity_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const Cli cli(argc, argv);
        sim::init_threads(cli);
        if (cli.get_bool("list", false)) {
            const int rc = list_capabilities();
            cli.check_unused();
            return rc;
        }
        const std::string protocol = cli.get("protocol", "");
        if (protocol == "turpin-coan" || protocol == "multivalued" || protocol == "mv")
            return run_multivalued(cli);
        return run_binary(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "adba_sim: error: %s\n", e.what());
        return 2;
    }
}
